package replicate

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/statemachine"
)

// ApplyJoint is the §6 variant of Apply: branches that share an innermost
// loop are replicated together with a single minimised joint machine
// (statemachine.BuildJoint) instead of sequentially — sequential
// application multiplies loop copies (n1·n2·…), the joint machine needs
// only its minimised product's states. Correlated (path) machines and
// branches alone in their loop are handled exactly as Apply does.
func ApplyJoint(prog *ir.Program, choices []statemachine.Choice, profilePreds []ir.Prediction, opts Options) (*Stats, error) {
	st := &Stats{InstrsBefore: prog.NumInstrs()}
	if opts.Verify {
		st.Orig = ir.CloneProgram(prog)
		st.Prov = analysis.NewProvenance(prog)
	}
	Annotate(prog, profilePreds)
	branchy := branchyFuncs(prog)
	budget := 0
	if opts.MaxSizeFactor > 0 {
		budget = int(float64(st.InstrsBefore) * opts.MaxSizeFactor)
	}

	choiceBySite := map[int32]*statemachine.Choice{}
	for i := range choices {
		c := &choices[i]
		// Statically-decided sites never enter the joint groups — same
		// "budget: static" rule as the sequential driver.
		if int(c.Site) < len(opts.StaticSkip) && opts.StaticSkip[c.Site] {
			st.StaticSkipped++
			continue
		}
		if c.Kind != statemachine.KindProfile {
			choiceBySite[c.Site] = c
		}
	}

	// Fixpoint over (loop, machine branches) groups: each pass re-analyses
	// the current CFG, picks one unprocessed group per function, and
	// replicates it jointly. Branch copies created by one pass are
	// themselves groups in later passes (nested loops replicate
	// multiplicatively, as in sequential application, but same-loop
	// branches share one minimised machine).
	processed := map[*ir.Block]bool{}
	for pass := 0; pass < 1000; pass++ {
		progress := false
		for _, f := range prog.Funcs {
			g := cfg.Build(f)
			lf := cfg.FindLoops(g)
			groups := map[*cfg.Loop][]*ir.Block{}
			var loopOrder []*cfg.Loop
			for _, b := range f.Blocks {
				if b.Term.Op != ir.TermBr || b.Term.SwTest || processed[b] {
					continue
				}
				c := choiceBySite[b.Term.Orig]
				if c == nil || (c.Kind != statemachine.KindLoop && c.Kind != statemachine.KindExit) {
					continue
				}
				l := lf.InnermostLoop(b)
				if l == nil {
					processed[b] = true
					continue
				}
				if _, seen := groups[l]; !seen {
					loopOrder = append(loopOrder, l)
				}
				groups[l] = append(groups[l], b)
			}
			if len(loopOrder) == 0 {
				continue
			}
			// One group per pass per function keeps every later group's
			// analysis fresh.
			l := loopOrder[0]
			blocks := groups[l]
			// Cap the product: joint-replicate the highest-gain branches
			// whose product stays tractable; the rest stay unprocessed and
			// replicate over the copies in later passes (sequentially,
			// exactly as Apply would).
			sort.SliceStable(blocks, func(a, b int) bool {
				return choiceBySite[blocks[a].Term.Orig].Gain() > choiceBySite[blocks[b].Term.Orig].Gain()
			})
			const maxProduct = 4096
			prod := 1
			sel := blocks[:0]
			for _, b := range blocks {
				n := choiceBySite[b.Term.Orig].NumStates()
				if prod*n <= maxProduct {
					prod *= n
					sel = append(sel, b)
				}
			}
			blocks = sel
			for _, b := range blocks {
				processed[b] = true
			}
			progress = true
			if budget > 0 && prog.NumInstrs() > budget {
				st.Skipped += len(blocks)
				continue
			}
			var cs []*statemachine.Choice
			for _, b := range blocks {
				cs = append(cs, choiceBySite[b.Term.Orig])
			}
			jm, err := statemachine.BuildJoint(cs)
			if err != nil {
				return st, err
			}
			// If the joint machine blows the size budget, drop the
			// lowest-gain branches (the list is gain-sorted) until it
			// fits, rather than skipping the whole loop.
			for budget > 0 && len(cs) > 0 &&
				prog.NumInstrs()+(jm.States-1)*l.NumInstrs() > budget {
				st.Skipped++
				cs = cs[:len(cs)-1]
				blocks = blocks[:len(blocks)-1]
				if len(cs) == 0 {
					break
				}
				jm, err = statemachine.BuildJoint(cs)
				if err != nil {
					return st, err
				}
			}
			if len(cs) == 0 {
				continue
			}
			clones, err := replicateLoopJoint(f, l, blocks, jm, st.Prov)
			if err != nil {
				st.Skipped += len(blocks)
				continue
			}
			for _, cb := range clones {
				processed[cb] = true
			}
			st.LoopApplied += len(blocks)
		}
		if !progress {
			break
		}
	}

	// Correlated machines as usual.
	for i := range choices {
		c := &choices[i]
		if c.Kind != statemachine.KindPath {
			continue
		}
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				if b.Term.Op == ir.TermBr && !b.Term.SwTest && b.Term.Orig == c.Site {
					routed, catch := replicatePath(prog, f, b, c.Path, branchy, st.Prov)
					st.PathEdgesRouted += routed
					st.PathEdgesCatchAll += catch
					st.PathApplied++
				}
			}
		}
	}

	prog.NumberBranches(false)
	if err := prog.Validate(); err != nil {
		return st, fmt.Errorf("replicate: joint-transformed program invalid: %w", err)
	}
	st.InstrsAfter = prog.NumInstrs()
	if err := verify(st, prog, choices, profilePreds, opts); err != nil {
		return st, err
	}
	return st, nil
}

// replicateLoopJoint copies loop l once per joint-machine state and wires
// every machine branch's successors through the joint transition function.
// It returns the branch-block clones it created so the driver can mark
// them processed.
func replicateLoopJoint(f *ir.Func, l *cfg.Loop, branches []*ir.Block, jm *statemachine.JointMachine, prov *analysis.Provenance) ([]*ir.Block, error) {
	if jm.States < 2 {
		// One state: just annotate the branches.
		app := prov.NewMachineApp(analysis.JointMachineModel{M: jm})
		for bi, b := range branches {
			b.Term.Pred = predOf(jm.Predict(0, bi))
			app.SetBranch(b, 0, bi)
		}
		return nil, nil
	}
	if l.Contains(f.Entry) {
		return nil, fmt.Errorf("replicate: loop contains the function entry")
	}
	preClone := make([]*ir.Block, len(f.Blocks))
	copy(preClone, f.Blocks)

	app := prov.NewMachineApp(analysis.JointMachineModel{M: jm})
	copies := make([]map[*ir.Block]*ir.Block, jm.States)
	for s := 0; s < jm.States; s++ {
		copies[s] = ir.CloneBlocks(f, l.Blocks, fmt.Sprintf(".j%d", s))
		prov.RecordClones(copies[s])
		for _, cp := range copies[s] {
			app.SetState(cp, s)
		}
	}
	for bi, b := range branches {
		origThen, origElse := b.Term.Then, b.Term.Else
		for s := 0; s < jm.States; s++ {
			bc := copies[s][b]
			bc.Term.Pred = predOf(jm.Predict(s, bi))
			app.SetBranch(bc, s, bi)
			if l.Contains(origThen) {
				bc.Term.Then = copies[jm.Next(s, bi, true)][origThen]
			}
			if l.Contains(origElse) {
				bc.Term.Else = copies[jm.Next(s, bi, false)][origElse]
			}
		}
	}
	initHeader := copies[jm.Init][l.Header]
	for _, u := range preClone {
		if l.Contains(u) {
			continue
		}
		if u.Term.Then == l.Header {
			u.Term.Then = initHeader
		}
		if (u.Term.Op == ir.TermBr || u.Term.Op == ir.TermSwitch) && u.Term.Else == l.Header {
			u.Term.Else = initHeader
		}
		for ti, tb := range u.Term.Targets {
			if tb == l.Header {
				u.Term.Targets[ti] = initHeader
			}
		}
	}
	ir.RemoveUnreachable(f)
	var clones []*ir.Block
	for s := 0; s < jm.States; s++ {
		for _, b := range branches {
			clones = append(clones, copies[s][b])
		}
	}
	return clones, nil
}
