package replicate

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/statemachine"
)

// TestReplicationPreservesSemanticsOnRandomPrograms is the pipeline's main
// property test: for randomly generated programs, profiling + machine
// selection + code replication must keep the program's observable
// behaviour (checksum, print count, return value) bit-identical, the
// transformed program must validate, and its measured misprediction must
// not collapse. Machine sizes and path options are varied with the seed.
func TestReplicationPreservesSemanticsOnRandomPrograms(t *testing.T) {
	cfg := progen.DefaultConfig()
	for seed := int64(0); seed < 40; seed++ {
		src := progen.Generate(seed, cfg)
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		nSites := prog.NumberBranches(true)
		if nSites == 0 {
			continue
		}

		// Reference run + profile.
		prof := profile.New(nSites, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 10_000_000
		ref.Hook = prof.Branch
		refRet, err := ref.Run()
		if errors.Is(err, interp.ErrLimit) {
			continue // too long for a unit test; other seeds cover it
		}
		if err != nil {
			t.Fatalf("seed %d: reference run: %v\n%s", seed, err, src)
		}

		feats := predict.Analyze(prog)
		maxStates := 2 + int(seed%7)
		choices := statemachine.Select(prof, feats, statemachine.Options{
			MaxStates:  maxStates,
			MaxPathLen: 1 + int(seed%2),
		})
		preds := predict.ProfileStatic(prof.Counts).Preds

		clone := ir.CloneProgram(prog)
		opts := Options{Verify: true}
		if seed%3 == 0 {
			opts.MaxSizeFactor = 2
		}
		st, err := ApplyOpts(clone, choices, preds, opts)
		if err != nil {
			t.Fatalf("seed %d: apply: %v\n%s", seed, err, src)
		}
		if !st.Verified {
			t.Fatalf("seed %d: Verify requested but Stats.Verified not set", seed)
		}
		if err := clone.Validate(); err != nil {
			t.Fatalf("seed %d: transformed invalid: %v", seed, err)
		}

		m := interp.New(clone)
		m.MaxSteps = 40_000_000
		got, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: transformed run: %v\n%s", seed, err, src)
		}
		if got != refRet {
			t.Fatalf("seed %d: return value changed %d -> %d\n%s", seed, refRet, got, src)
		}
		if m.Checksum != ref.Checksum || m.Prints != ref.Prints {
			t.Fatalf("seed %d: observable behaviour changed (checksum %d->%d prints %d->%d)\n%s",
				seed, ref.Checksum, m.Checksum, ref.Prints, m.Prints, src)
		}
		if m.Branches != ref.Branches {
			t.Fatalf("seed %d: executed branch count changed %d -> %d (replication must not add dynamic branches)",
				seed, ref.Branches, m.Branches)
		}
	}
}

// TestReplicationIdempotentBranchCounts checks that replication preserves
// the dynamic branch count even when applied twice with different
// selections (machines over machine copies).
func TestReplicationStacksSafely(t *testing.T) {
	src := progen.Generate(123, progen.DefaultConfig())
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	n := prog.NumberBranches(true)
	if n == 0 {
		t.Skip("no branches in this seed")
	}
	prof := profile.New(n, profile.Options{})
	ref := interp.New(prog)
	ref.MaxSteps = 10_000_000
	ref.Hook = prof.Branch
	refRet, err := ref.Run()
	if err != nil {
		t.Skip("seed too long")
	}
	feats := predict.Analyze(prog)
	preds := predict.ProfileStatic(prof.Counts).Preds

	clone := ir.CloneProgram(prog)
	ch1 := statemachine.Select(prof, feats, statemachine.Options{MaxStates: 2, MaxPathLen: 1})
	if _, err := ApplyOpts(clone, ch1, preds, Options{MaxSizeFactor: 4}); err != nil {
		t.Fatal(err)
	}
	// Second application over the transformed program: re-profile it
	// (sites renumbered) and transform again.
	n2 := clone.NumberBranches(false)
	prof2 := profile.New(n2, profile.Options{})
	m2 := interp.New(clone)
	m2.MaxSteps = 40_000_000
	m2.Hook = prof2.Branch
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	// Reset Orig to current sites so the second Select/Apply treats the
	// transformed program as the new original.
	clone.NumberBranches(true)
	feats2 := predict.Analyze(clone)
	ch2 := statemachine.Select(prof2, feats2, statemachine.Options{MaxStates: 3, MaxPathLen: 1})
	preds2 := predict.ProfileStatic(prof2.Counts).Preds
	if _, err := ApplyOpts(clone, ch2, preds2, Options{MaxSizeFactor: 2}); err != nil {
		t.Fatal(err)
	}
	final := interp.New(clone)
	final.MaxSteps = 80_000_000
	got, err := final.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != refRet || final.Checksum != ref.Checksum {
		t.Fatal("stacked replication changed semantics")
	}
}
