package replicate

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

// pipeline compiles src, profiles it, selects machines with maxStates, and
// returns everything needed to apply and measure.
type pipelineResult struct {
	orig    *ir.Program
	prof    *profile.Profile
	feats   []predict.SiteFeatures
	choices []statemachine.Choice
	preds   []ir.Prediction
	baseRet int64
	baseSum uint64
}

func runPipeline(t *testing.T, src string, opts statemachine.Options) *pipelineResult {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	n := prog.NumberBranches(true)
	prof := profile.New(n, profile.Options{})
	m := interp.New(prog)
	m.Hook = prof.Branch
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("profile run: %v", err)
	}
	feats := predict.Analyze(prog)
	choices := statemachine.Select(prof, feats, opts)
	preds := predict.ProfileStatic(prof.Counts).Preds
	return &pipelineResult{
		orig: prog, prof: prof, feats: feats, choices: choices,
		preds: preds, baseRet: ret, baseSum: m.Checksum,
	}
}

// applyAndMeasure clones, replicates, verifies semantics, and returns the
// measured misprediction rate plus stats.
func applyAndMeasure(t *testing.T, p *pipelineResult) (float64, *Stats, *ir.Program) {
	t.Helper()
	clone := ir.CloneProgram(p.orig)
	st, err := Apply(clone, p.choices, p.preds)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	m := interp.New(clone)
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("transformed run: %v", err)
	}
	if ret != p.baseRet || m.Checksum != p.baseSum {
		t.Fatalf("semantics changed: ret %d→%d checksum %d→%d",
			p.baseRet, ret, p.baseSum, m.Checksum)
	}
	if m.Predicted == 0 {
		t.Fatal("no predicted branches executed")
	}
	return 100 * float64(m.Mispredicted) / float64(m.Predicted), st, clone
}

// baselineRate measures the profile-only static prediction rate.
func baselineRate(t *testing.T, p *pipelineResult) float64 {
	t.Helper()
	clone := ir.CloneProgram(p.orig)
	Annotate(clone, p.preds)
	m := interp.New(clone)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return 100 * float64(m.Mispredicted) / float64(m.Predicted)
}

const alternatingSrc = `
func main() int {
    var s int = 0;
    for var i int = 0; i < 2000; i = i + 1 {
        if i % 2 == 0 {
            s = s + 1;
        } else {
            s = s + 2;
        }
    }
    print(s);
    return s;
}`

func TestLoopReplicationAlternatingBranch(t *testing.T) {
	p := runPipeline(t, alternatingSrc, statemachine.Options{MaxStates: 2, MaxPathLen: 1})
	base := baselineRate(t, p)
	if base < 20 {
		t.Fatalf("baseline rate %.2f%% — alternating branch should hurt profile", base)
	}
	got, st, _ := applyAndMeasure(t, p)
	if got > 1.0 {
		t.Fatalf("replicated rate %.2f%%, want near 0 (baseline %.2f%%)", got, base)
	}
	if st.LoopApplied == 0 {
		t.Fatalf("no loop machine applied: %+v", st)
	}
	if st.InstrsAfter <= st.InstrsBefore {
		t.Fatal("replication must grow the code")
	}
}

func TestLoopReplicationPrunesUnreachableCopies(t *testing.T) {
	p := runPipeline(t, alternatingSrc, statemachine.Options{MaxStates: 2, MaxPathLen: 1})
	_, st, prog := applyAndMeasure(t, p)
	// The two-state copy of the loop would double the loop body; pruning
	// of cross-copy-unreachable blocks (the paper's discarded 2b/3a) must
	// keep growth below a strict doubling of the whole program.
	if f := st.SizeFactor(); f >= 2.0 {
		t.Fatalf("size factor %.2f — pruning did not happen", f)
	}
	for _, f := range prog.Funcs {
		if err := prog.Validate(); err != nil {
			t.Fatalf("func %s invalid: %v", f.Name, err)
		}
	}
}

func TestExitMachineReplicationCountedLoop(t *testing.T) {
	src := `
func main() int {
    var s int = 0;
    for var i int = 0; i < 500; i = i + 1 {
        for var j int = 0; j < 4; j = j + 1 {
            s = s + j;
        }
    }
    print(s);
    return s;
}`
	p := runPipeline(t, src, statemachine.Options{MaxStates: 6, MaxPathLen: 1, DisablePath: true})
	base := baselineRate(t, p)
	got, st, _ := applyAndMeasure(t, p)
	if st.ExitApplied == 0 && st.LoopApplied == 0 {
		t.Fatalf("no machine applied: %+v", st)
	}
	// The inner loop's exit branch (miss rate 20% under profile) becomes
	// almost perfectly predictable.
	if got > base/2 {
		t.Fatalf("rate %.2f%% vs baseline %.2f%% — exit machine ineffective", got, base)
	}
	if got > 2.0 {
		t.Fatalf("rate %.2f%%, want near 0", got)
	}
}

const correlatedSrc = `
var seed int = 12345;

func rand() int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if seed < 0 { seed = -seed; }
    return seed;
}

func main() int {
    var a int = 0;
    for var i int = 0; i < 3000; i = i + 1 {
        var x int = 0;
        if (rand() >> 7) % 2 == 0 {
            x = 1;
            a = a + 1;
        }
        if x == 1 {
            a = a + 2;
        }
    }
    print(a);
    return a;
}`

func TestPathReplicationCorrelatedBranch(t *testing.T) {
	p := runPipeline(t, correlatedSrc, statemachine.Options{
		MaxStates: 3, DisableLoop: true, DisableExit: true,
	})
	// The second if must have been selected as a correlated branch.
	var pathChosen bool
	for _, c := range p.choices {
		if c.Kind == statemachine.KindPath {
			pathChosen = true
		}
	}
	if !pathChosen {
		t.Fatal("no correlated machine selected")
	}
	base := baselineRate(t, p)
	got, st, _ := applyAndMeasure(t, p)
	if st.PathApplied == 0 || st.PathEdgesRouted == 0 {
		t.Fatalf("path replication did not route edges: %+v", st)
	}
	// The x==1 branch flips from ~50% mispredicted to ~0; overall rate
	// must drop clearly below the baseline.
	if got >= base-5 {
		t.Fatalf("rate %.2f%% vs baseline %.2f%% — correlation not exploited", got, base)
	}
}

func TestAnnotateSetsAllBranches(t *testing.T) {
	p := runPipeline(t, alternatingSrc, statemachine.Options{MaxStates: 2, MaxPathLen: 1})
	clone := ir.CloneProgram(p.orig)
	Annotate(clone, p.preds)
	for _, f := range clone.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr && b.Term.Pred == ir.PredNone {
				t.Fatalf("branch %d unannotated", b.Term.Site)
			}
		}
	}
}

func TestSemanticsPreservedAcrossPrograms(t *testing.T) {
	srcs := map[string]string{
		"nestedLoops": `
func main() int {
    var s int = 0;
    for var i int = 0; i < 60; i = i + 1 {
        for var j int = 0; j < i % 7; j = j + 1 {
            if (i + j) % 3 == 0 { s = s + j; } else { s = s - 1; }
        }
    }
    print(s);
    return s;
}`,
		"recursion": `
var depth int = 0;

func fib(n int) int {
    depth = depth + 1;
    if n < 2 { return n; }
    return fib(n-1) + fib(n-2);
}

func main() int {
    var r int = fib(15);
    print(r);
    print(depth);
    return r;
}`,
		"whileBreakContinue": `
func main() int {
    var s int = 0;
    var i int = 0;
    while true {
        i = i + 1;
        if i > 300 { break; }
        if i % 3 == 0 { continue; }
        if i % 5 == 0 && i % 2 == 1 { s = s + 10; } else { s = s + 1; }
    }
    print(s);
    return s;
}`,
		"arrays": `
var buf [64]int;

func main() int {
    var s int = 0;
    for var i int = 0; i < 640; i = i + 1 {
        buf[i % 64] = buf[i % 64] + i;
        if buf[i % 64] % 2 == 0 { s = s + 1; }
    }
    print(s);
    return s;
}`,
	}
	for name, src := range srcs {
		for _, n := range []int{2, 3, 5, 8} {
			p := runPipeline(t, src, statemachine.Options{MaxStates: n})
			got, _, prog := applyAndMeasure(t, p)
			_ = got
			if err := prog.Validate(); err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
		}
		_ = name
	}
}

func TestReplicationImprovesOrMatchesBaseline(t *testing.T) {
	// Property over the test programs: measured rate after replication
	// should not be dramatically worse than the profile baseline (small
	// regressions are possible since machines are trained on the same
	// trace they predict, but catastrophes indicate transform bugs).
	srcs := []string{alternatingSrc, correlatedSrc}
	for _, src := range srcs {
		p := runPipeline(t, src, statemachine.Options{MaxStates: 4, MaxPathLen: 1})
		base := baselineRate(t, p)
		got, _, _ := applyAndMeasure(t, p)
		if got > base+5 {
			t.Fatalf("replication made things worse: %.2f%% vs %.2f%%", got, base)
		}
	}
}

func TestMultiplicativeGrowthSameLoop(t *testing.T) {
	// Two replicated branches in one loop multiply the state copies
	// (paper section 6): growth must exceed what either branch alone
	// causes.
	src := `
var seed int = 7;

func rnd() int {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if seed < 0 { seed = -seed; }
    return seed;
}

func main() int {
    var s int = 0;
    for var i int = 0; i < 2000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; }
        if i % 3 == 0 { s = s + 2; }
    }
    print(s);
    return s;
}`
	p := runPipeline(t, src, statemachine.Options{MaxStates: 3, MaxPathLen: 1, DisablePath: true})
	var machineBranches int
	for _, c := range p.choices {
		if c.Kind != statemachine.KindProfile {
			machineBranches++
		}
	}
	if machineBranches < 2 {
		t.Skipf("only %d machine branches selected", machineBranches)
	}
	_, both, _ := applyAndMeasure(t, p)

	// Apply only the first machine branch.
	single := make([]statemachine.Choice, len(p.choices))
	copy(single, p.choices)
	found := false
	for i := range single {
		if single[i].Kind != statemachine.KindProfile {
			if found {
				single[i] = statemachine.Choice{Site: single[i].Site, Kind: statemachine.KindProfile}
			}
			found = true
		}
	}
	cl := ir.CloneProgram(p.orig)
	stSingle, err := Apply(cl, single, p.preds)
	if err != nil {
		t.Fatal(err)
	}
	growBoth := both.InstrsAfter - both.InstrsBefore
	growSingle := stSingle.InstrsAfter - stSingle.InstrsBefore
	if growBoth <= growSingle {
		t.Fatalf("expected multiplicative growth: both=%d single=%d", growBoth, growSingle)
	}
}

func TestApplyIsIdempotentOnProfileChoices(t *testing.T) {
	p := runPipeline(t, alternatingSrc, statemachine.Options{MaxStates: 2, MaxPathLen: 1})
	for i := range p.choices {
		p.choices[i] = statemachine.Choice{Site: p.choices[i].Site, Kind: statemachine.KindProfile}
	}
	clone := ir.CloneProgram(p.orig)
	st, err := Apply(clone, p.choices, p.preds)
	if err != nil {
		t.Fatal(err)
	}
	if st.InstrsAfter != st.InstrsBefore {
		t.Fatal("profile-only choices must not change code size")
	}
}

func TestBranchyFuncs(t *testing.T) {
	prog, err := lang.Compile(`
func leaf() int { return 1; }
func brancher(x int) int { if x > 0 { return 1; } return 0; }
func caller(x int) int { return brancher(x); }
func main() int { return leaf() + caller(3); }
`)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	br := branchyFuncs(prog)
	get := func(name string) bool { return br[prog.Func(name).ID] }
	if get("leaf") {
		t.Fatal("leaf must not be branchy")
	}
	if !get("brancher") || !get("caller") || !get("main") {
		t.Fatal("transitive branchiness wrong")
	}
}

func TestStatsString(t *testing.T) {
	st := &Stats{InstrsBefore: 100, InstrsAfter: 130}
	if st.SizeFactor() != 1.3 {
		t.Fatalf("size factor = %v", st.SizeFactor())
	}
	empty := &Stats{}
	if empty.SizeFactor() != 1 {
		t.Fatal("empty stats size factor must be 1")
	}
	if !strings.Contains("x", "x") {
		t.Fatal("sanity")
	}
}
