// Package replicate implements the paper's code replication transforms
// (sections 4–5): loop replication, which materialises a branch prediction
// state machine as one copy of the enclosing natural loop per state
// (Figure 1), and tail duplication for correlated branches (after Mueller &
// Whalley), which gives each predecessor path its own copy of the branch
// block. Every replicated branch copy carries a static prediction — the
// majority direction of its machine state — so the interpreter can measure
// the transformed program's real misprediction rate.
package replicate

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/statemachine"
)

// ErrVerify wraps the first verifier Error when Options.Verify is set and
// the transformed program fails the equivalence check. Callers test with
// errors.Is; the full diagnostic list is in Stats.Diags.
var ErrVerify = errors.New("replicate: verification failed")

// Stats reports what one Apply call did.
type Stats struct {
	// LoopApplied / ExitApplied / PathApplied count machine applications
	// (one per branch copy present when the machine was applied).
	LoopApplied int
	ExitApplied int
	PathApplied int
	// PathEdgesRouted counts predecessor edges routed to a specific path
	// state; PathEdgesCatchAll counts edges left on the catch-all copy.
	PathEdgesRouted   int
	PathEdgesCatchAll int
	// Skipped counts machines that could not be applied (e.g. the loop
	// disappeared after an earlier transform).
	Skipped int
	// StaticSkipped counts machines dropped because Options.StaticSkip
	// marked their site as statically decided — replication budget is
	// never spent on a branch whose direction is already proven.
	StaticSkipped int
	// InstrsBefore/After measure code size (the paper's size metric).
	InstrsBefore, InstrsAfter int
	// Verified reports that Options.Verify was set and the equivalence
	// verifier found no errors; Diags holds its full output (including
	// warnings). Orig and Prov are the pre-transform snapshot and the copy
	// provenance the verification ran against, for callers that want to
	// re-run or extend the analysis.
	Verified bool
	Diags    []analysis.Diagnostic
	Orig     *ir.Program
	Prov     *analysis.Provenance
}

// SizeFactor is the code growth ratio.
func (s *Stats) SizeFactor() float64 {
	if s.InstrsBefore == 0 {
		return 1
	}
	return float64(s.InstrsAfter) / float64(s.InstrsBefore)
}

// Annotate sets every conditional branch's static prediction from the
// per-original-branch vector (indexed by Orig ID; ir.PredNone entries are
// allowed and left unpredicted). Replicated copies inherit their original's
// prediction until a machine overrides them. SwTest branches are owned by
// the indirect clustering family — their prediction encodes the profiled
// hot outcome and must survive branch-family annotation.
func Annotate(prog *ir.Program, preds []ir.Prediction) {
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op != ir.TermBr || b.Term.SwTest {
				continue
			}
			if int(b.Term.Orig) < len(preds) {
				b.Term.Pred = preds[b.Term.Orig]
			}
		}
	}
}

// machine abstracts the two loop-replicable machine families.
type machine interface {
	NumStates() int
	Next(i int, taken bool) int
	predTaken(i int) bool
	initState() int
	model() analysis.Machine
}

type loopM struct{ *statemachine.LoopMachine }

func (m loopM) predTaken(i int) bool    { return m.PredTaken[i] }
func (m loopM) initState() int          { return m.Init }
func (m loopM) model() analysis.Machine { return analysis.LoopMachineModel{M: m.LoopMachine} }

type exitM struct{ *statemachine.ExitMachine }

func (m exitM) predTaken(i int) bool    { return m.PredTaken[i] }
func (m exitM) initState() int          { return 0 }
func (m exitM) model() analysis.Machine { return analysis.ExitMachineModel{M: m.ExitMachine} }

func predOf(taken bool) ir.Prediction {
	if taken {
		return ir.PredTaken
	}
	return ir.PredNotTaken
}

// Options bounds an Apply run.
type Options struct {
	// MaxSizeFactor stops applying further machines once the program has
	// grown past this factor of its original size (0 = unlimited). Two
	// replicated branches in one loop multiply its copies — §6 notes that
	// some programs would grow more than a thousandfold without a cost
	// bound, and §5's optimizer applies replication only where a cost
	// function allows it.
	MaxSizeFactor float64
	// StaticSkip, indexed by original branch site, marks sites the static
	// analysis decided (always-taken, dead, or unreachable branches).
	// Machines targeting a marked site are dropped before the budget is
	// allocated — the "budget: static" selection mode.
	StaticSkip []bool
	// Verify makes Apply record copy provenance while transforming and run
	// the analysis.Verify equivalence suite on the result: any verifier
	// Error fails the call with ErrVerify. The snapshot, provenance, and
	// diagnostics are returned in Stats.
	Verify bool
}

// Apply replicates code for every non-profile choice, after annotating all
// branches with the profile predictions. The program is modified in place
// (clone it first with ir.CloneProgram to keep the original); on return the
// branch sites are renumbered (Orig IDs preserved) and the program is
// revalidated.
//
// Correlated machines are applied through tail duplication with
// length-1 paths (the immediately preceding branch); longer path states are
// served by the catch-all copy — the measured rate is then an upper bound
// of the predicted one. Loop and exit machines are applied in full.
func Apply(prog *ir.Program, choices []statemachine.Choice, profilePreds []ir.Prediction) (*Stats, error) {
	return ApplyOpts(prog, choices, profilePreds, Options{})
}

// ApplyOpts is Apply with a size budget: machines are applied in order of
// decreasing profile improvement, and applications stop once the budget is
// exhausted (remaining machines are counted as Skipped).
func ApplyOpts(prog *ir.Program, choices []statemachine.Choice, profilePreds []ir.Prediction, opts Options) (*Stats, error) {
	st := &Stats{InstrsBefore: prog.NumInstrs()}
	if opts.Verify {
		st.Orig = ir.CloneProgram(prog)
		st.Prov = analysis.NewProvenance(prog)
	}
	Annotate(prog, profilePreds)
	branchy := branchyFuncs(prog)
	// Apply in decreasing gain density (correct predictions gained per
	// instruction added) — the ordering rule of the paper's §5 figures.
	// Costs are estimated on the untransformed program.
	type cand struct {
		idx     int
		density float64
	}
	var cands []cand
	for i := range choices {
		c := &choices[i]
		// Statically-decided sites are claimed by the analysis before the
		// profile-static fallback: however the selection classified them,
		// no replication budget is spent there.
		if int(c.Site) < len(opts.StaticSkip) && opts.StaticSkip[c.Site] {
			st.StaticSkipped++
			continue
		}
		if c.Kind == statemachine.KindProfile {
			continue
		}
		cost := 1.0
		if c.Kind != statemachine.KindPath {
			for _, f := range prog.Funcs {
				for _, b := range f.Blocks {
					if b.Term.Op == ir.TermBr && !b.Term.SwTest && b.Term.Orig == c.Site {
						if est := estimateLoopGrowth(f, b, c.NumStates()); est > 0 {
							cost += float64(est)
						}
					}
				}
			}
		}
		cands = append(cands, cand{idx: i, density: c.Gain() / cost})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].density > cands[b].density
	})
	order := make([]int, len(cands))
	for i, c := range cands {
		order[i] = c.idx
	}
	budget := 0
	if opts.MaxSizeFactor > 0 {
		budget = int(float64(st.InstrsBefore) * opts.MaxSizeFactor)
	}
	for _, i := range order {
		c := &choices[i]
		if budget > 0 && prog.NumInstrs() > budget {
			st.Skipped++
			continue
		}
		// Locate every current block descending from the original branch.
		type site struct {
			f *ir.Func
			b *ir.Block
		}
		var sites []site
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				if b.Term.Op == ir.TermBr && !b.Term.SwTest && b.Term.Orig == c.Site {
					sites = append(sites, site{f, b})
				}
			}
		}
		for _, s := range sites {
			if budget > 0 {
				cur := prog.NumInstrs()
				if cur > budget {
					st.Skipped++
					continue
				}
				if c.Kind == statemachine.KindLoop || c.Kind == statemachine.KindExit {
					if cur+estimateLoopGrowth(s.f, s.b, c.NumStates()) > budget {
						st.Skipped++
						continue
					}
				}
			}
			var err error
			switch c.Kind {
			case statemachine.KindLoop:
				err = replicateLoop(s.f, s.b, loopM{c.Loop}, st.Prov)
				if err == nil {
					st.LoopApplied++
				}
			case statemachine.KindExit:
				err = replicateLoop(s.f, s.b, exitM{c.Exit}, st.Prov)
				if err == nil {
					st.ExitApplied++
				}
			case statemachine.KindPath:
				routed, catch := replicatePath(prog, s.f, s.b, c.Path, branchy, st.Prov)
				st.PathEdgesRouted += routed
				st.PathEdgesCatchAll += catch
				st.PathApplied++
			}
			if err != nil {
				st.Skipped++
			}
		}
	}
	prog.NumberBranches(false)
	if err := prog.Validate(); err != nil {
		return st, fmt.Errorf("replicate: transformed program invalid: %w", err)
	}
	st.InstrsAfter = prog.NumInstrs()
	if err := verify(st, prog, choices, profilePreds, opts); err != nil {
		return st, err
	}
	return st, nil
}

// verify runs the equivalence suite over the transformed program when
// Options.Verify is set, recording the diagnostics in st.
func verify(st *Stats, prog *ir.Program, choices []statemachine.Choice, profilePreds []ir.Prediction, opts Options) error {
	if !opts.Verify {
		return nil
	}
	st.Diags = analysis.Verify(st.Orig, prog, st.Prov, choices, profilePreds)
	if d := analysis.FirstError(st.Diags); d != nil {
		return fmt.Errorf("%w: %s", ErrVerify, d)
	}
	st.Verified = true
	return nil
}

// estimateLoopGrowth bounds the instruction growth of replicating the
// innermost loop of block b into n state copies (pruning can only shrink
// the real figure).
func estimateLoopGrowth(f *ir.Func, b *ir.Block, n int) int {
	g := cfg.Build(f)
	lf := cfg.FindLoops(g)
	l := lf.InnermostLoop(b)
	if l == nil {
		return 0
	}
	return (n - 1) * l.NumInstrs()
}

// replicateLoop materialises a state machine for the branch in block b by
// copying its innermost natural loop once per state (Figure 1): all edges
// stay within their copy except the replicated branch, whose taken and
// not-taken successors jump into the copies designated by the transition
// function. Entries into the loop go to the initial state's copy; exits
// leave unchanged; unreachable copies are pruned.
func replicateLoop(f *ir.Func, b *ir.Block, m machine, prov *analysis.Provenance) error {
	n := m.NumStates()
	if n < 2 {
		return nil
	}
	g := cfg.Build(f)
	lf := cfg.FindLoops(g)
	l := lf.InnermostLoop(b)
	if l == nil {
		return fmt.Errorf("replicate: branch block %s is not in a loop", b)
	}
	if l.Contains(f.Entry) {
		return fmt.Errorf("replicate: loop of %s contains the function entry", b)
	}
	preClone := make([]*ir.Block, len(f.Blocks))
	copy(preClone, f.Blocks)

	app := prov.NewMachineApp(m.model())
	copies := make([]map[*ir.Block]*ir.Block, n)
	for s := 0; s < n; s++ {
		copies[s] = ir.CloneBlocks(f, l.Blocks, fmt.Sprintf(".q%d", s))
		prov.RecordClones(copies[s])
		for _, cp := range copies[s] {
			app.SetState(cp, s)
		}
	}
	// Wire the replicated branch: state transitions happen only here.
	origThen, origElse := b.Term.Then, b.Term.Else
	for s := 0; s < n; s++ {
		bc := copies[s][b]
		bc.Term.Pred = predOf(m.predTaken(s))
		app.SetBranch(bc, s, 0)
		if l.Contains(origThen) {
			bc.Term.Then = copies[m.Next(s, true)][origThen]
		}
		if l.Contains(origElse) {
			bc.Term.Else = copies[m.Next(s, false)][origElse]
		}
	}
	// Route loop entries to the initial state's copy of the header.
	initHeader := copies[m.initState()][l.Header]
	for _, u := range preClone {
		if l.Contains(u) {
			continue
		}
		if u.Term.Then == l.Header {
			u.Term.Then = initHeader
		}
		if (u.Term.Op == ir.TermBr || u.Term.Op == ir.TermSwitch) && u.Term.Else == l.Header {
			u.Term.Else = initHeader
		}
		for ti, tb := range u.Term.Targets {
			if tb == l.Header {
				u.Term.Targets[ti] = initHeader
			}
		}
	}
	ir.RemoveUnreachable(f)
	return nil
}

// branchyFuncs computes which functions may (transitively) execute a
// conditional branch when called; a call to such a function between a
// predecessor branch and a correlated branch invalidates static path
// knowledge.
func branchyFuncs(prog *ir.Program) []bool {
	n := len(prog.Funcs)
	direct := make([]bool, n)
	callees := make([][]int, n)
	for i, f := range prog.Funcs {
		seen := map[int]bool{}
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr {
				direct[i] = true
			}
			for j := range b.Instrs {
				if b.Instrs[j].Op == ir.OpCall {
					c := int(b.Instrs[j].Imm)
					if !seen[c] {
						seen[c] = true
						callees[i] = append(callees[i], c)
					}
				}
			}
		}
	}
	// Propagate to fixpoint (call graphs are tiny).
	changed := true
	for changed {
		changed = false
		for i := range direct {
			if direct[i] {
				continue
			}
			for _, c := range callees[i] {
				if direct[c] {
					direct[i] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// blockCallsBranchy reports whether any call in the block can execute a
// branch.
func blockCallsBranchy(b *ir.Block, branchy []bool) bool {
	for i := range b.Instrs {
		if b.Instrs[i].Op == ir.OpCall && branchy[b.Instrs[i].Imm] {
			return true
		}
	}
	return false
}
