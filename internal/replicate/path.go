package replicate

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/statemachine"
)

// Limits for the backward path-resolution search: walking up a jump chain
// stops after pathMaxDepth blocks, and at most pathMaxClones blocks are
// cloned per replicated branch. Edges that exceed the budget stay on the
// catch-all copy.
const (
	pathMaxDepth  = 8
	pathMaxClones = 32
)

// edge identifies one CFG edge by its source block and terminator slot
// (taken = the Then slot; Jmp blocks use the Then slot). Switch edges use
// swIdx ≥ 0 for the Targets[swIdx] slot and swIdx == swElse for the
// default slot; both leave taken false.
type edge struct {
	u     *ir.Block
	taken bool
	swIdx int
}

// swElse marks the default slot of a switch edge.
const swElse = -1

func (e edge) target() *ir.Block {
	if e.u.Term.Op == ir.TermSwitch {
		if e.swIdx >= 0 {
			return e.u.Term.Targets[e.swIdx]
		}
		return e.u.Term.Else
	}
	if e.taken {
		return e.u.Term.Then
	}
	return e.u.Term.Else
}

func (e edge) redirect(to *ir.Block) {
	if e.u.Term.Op == ir.TermSwitch {
		if e.swIdx >= 0 {
			e.u.Term.Targets[e.swIdx] = to
		} else {
			e.u.Term.Else = to
		}
		return
	}
	if e.taken {
		e.u.Term.Then = to
	} else {
		e.u.Term.Else = to
	}
}

// pathElem is a length-1 correlated-path element: the identity and
// direction of the branch executed immediately before the predicted one.
type pathElem struct {
	orig  int32
	taken bool
}

// replicatePath applies a correlated-branch machine to block b by tail
// duplication (after Mueller & Whalley): one copy of b per length-1 path
// state, the original b serving as the catch-all. Each predecessor edge is
// resolved to its last executed branch by walking jump chains backwards;
// a shared jump block feeding b directly is split into private copies so
// each predecessor can be routed independently. Edges whose last branch is
// not statically known — function entry, intervening calls that may branch,
// deep or merging jump chains, budget overruns — stay on the catch-all.
//
// Longer path states (length ≥ 2) are not routed; the machine's catch-all
// absorbs them, so the measured misprediction rate upper-bounds the
// predicted one. It returns the number of edges routed to a specific state
// and the number left on the catch-all.
func replicatePath(prog *ir.Program, f *ir.Func, b *ir.Block, pm *statemachine.PathMachine, branchy []bool, prov *analysis.Provenance) (routed, catchAll int) {
	stateOf := map[pathElem]int{}
	for i, p := range pm.Paths {
		if p.Len() != 1 {
			continue
		}
		site, taken, ok := p.Elem(0)
		if !ok {
			continue
		}
		stateOf[pathElem{site, taken}] = i
	}
	papp := prov.NewPathApp(pm)
	papp.SetCatchAll(b)
	b.Term.Pred = predOf(pm.CatchPred)
	if len(stateOf) == 0 {
		return 0, 0
	}

	// Lazily created per-state copies of b. A copy's successors are b's
	// successors: if b loops to itself the copy must branch back to the
	// dispatch structure, which CloneBlocks' in-set redirection would
	// break, so undo it.
	copies := map[int]*ir.Block{}
	copyFor := func(state int) *ir.Block {
		if c, ok := copies[state]; ok {
			return c
		}
		m := ir.CloneBlocks(f, []*ir.Block{b}, ".p")
		prov.RecordClones(m)
		c := m[b]
		if c.Term.Then == c {
			c.Term.Then = b.Term.Then
		}
		if c.Term.Op == ir.TermBr && c.Term.Else == c {
			c.Term.Else = b.Term.Else
		}
		c.Term.Pred = predOf(pm.PredTaken[state])
		papp.SetStateCopy(c, state)
		copies[state] = c
		return c
	}

	preds := predEdges(f)
	clonesLeft := pathMaxClones

	// walkElem finds the branch executed last when control traverses edge
	// e, without modifying the CFG. It fails on merges, entries, branchy
	// calls, and depth overruns.
	var walkElem func(e edge, depth int) (pathElem, bool)
	walkElem = func(e edge, depth int) (pathElem, bool) {
		u := e.u
		if u.Term.Op == ir.TermBr {
			return pathElem{u.Term.Orig, e.taken}, true
		}
		if u.Term.Op == ir.TermSwitch {
			// A multi-way dispatch is not a length-1 branch-path element;
			// its edges stay on the catch-all.
			return pathElem{}, false
		}
		if depth >= pathMaxDepth || u == f.Entry || blockCallsBranchy(u, branchy) {
			return pathElem{}, false
		}
		in := preds[u]
		if len(in) != 1 {
			return pathElem{}, false
		}
		return walkElem(in[0], depth+1)
	}

	stateRouted := make([]bool, len(pm.Paths))
	dispatch := func(e edge, el pathElem, ok bool) {
		if !ok {
			catchAll++
			return
		}
		if s, found := stateOf[el]; found {
			e.redirect(copyFor(s))
			stateRouted[s] = true
			routed++
		} else {
			catchAll++
		}
	}

	// Snapshot the incoming edges, then route each one.
	var incoming []edge
	for _, e := range allEdges(f) {
		if e.target() == b {
			incoming = append(incoming, e)
		}
	}
	for _, e := range incoming {
		u := e.u
		if u.Term.Op == ir.TermBr {
			dispatch(e, pathElem{u.Term.Orig, e.taken}, true)
			continue
		}
		if u.Term.Op == ir.TermSwitch {
			// Not a branch-path element: the edge stays on the catch-all.
			catchAll++
			continue
		}
		// u is a jump block directly feeding b. If it merges several
		// predecessors, split it so each can be routed on its own; a
		// single-predecessor chain resolves by walking.
		if u == f.Entry || blockCallsBranchy(u, branchy) {
			catchAll++
			continue
		}
		in := preds[u]
		switch {
		case len(in) == 1:
			el, ok := walkElem(in[0], 1)
			dispatch(e, el, ok)
		case len(in) > 1 && clonesLeft >= len(in)-1:
			clonesLeft -= len(in) - 1
			for i, pe := range in {
				chain := u
				if i > 0 {
					m := ir.CloneBlocks(f, []*ir.Block{u}, ".s")
					prov.RecordClones(m)
					chain = m[u]
					chain.Term = u.Term // jump to b, not to the clone set
					chain.Term.Then = b
					pe.redirect(chain)
				}
				el, ok := walkElem(pe, 1)
				dispatch(edge{u: chain, taken: true}, el, ok)
			}
		default:
			catchAll++
		}
	}
	// Events of unroutable states (length ≥ 2 paths, cross-function or
	// unresolvable predecessors) land on the catch-all copy: fold their
	// profiled counts back into the catch-all pair so its static
	// prediction covers what it will actually see.
	papp.Finish(stateRouted)
	adjusted := pm.CatchPair
	for i := range pm.Paths {
		if !stateRouted[i] {
			adjusted.Merge(pm.StatePairs[i])
		}
	}
	b.Term.Pred = predOf(adjusted.MajorityTaken())
	ir.RemoveUnreachable(f)
	return routed, catchAll
}

func predEdges(f *ir.Func) map[*ir.Block][]edge {
	m := make(map[*ir.Block][]edge, len(f.Blocks))
	for _, e := range allEdges(f) {
		m[e.target()] = append(m[e.target()], e)
	}
	return m
}

func allEdges(f *ir.Func) []edge {
	var out []edge
	for _, u := range f.Blocks {
		switch u.Term.Op {
		case ir.TermJmp:
			out = append(out, edge{u: u, taken: true})
		case ir.TermBr:
			out = append(out, edge{u: u, taken: true}, edge{u: u, taken: false})
		case ir.TermSwitch:
			for i := range u.Term.Targets {
				out = append(out, edge{u: u, swIdx: i})
			}
			out = append(out, edge{u: u, swIdx: swElse})
		}
	}
	return out
}
