package analysis

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, "program"},
		{Pos{Func: "main", Block: -1, Instr: -1}, "main"},
		{Pos{Func: "main", Block: 3, Instr: -1}, "main/b3"},
		{Pos{Func: "main", Block: 3, Instr: 2}, "main/b3[2]"},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Pass: "equivalence", Sev: Error, Pos: Pos{Func: "f", Block: 1, Instr: -1}, Msg: "boom"}
	if got, want := d.String(), "error: equivalence: f/b1: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	w := Diagnostic{Pass: "cfglint", Sev: Warning, Pos: Pos{}, Msg: "odd"}
	if got, want := w.String(), "warning: cfglint: program: odd"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// scriptedPass emits a fixed list of diagnostics, for Manager tests.
type scriptedPass struct {
	name string
	emit func(c *Context)
}

func (p scriptedPass) Name() string   { return p.name }
func (p scriptedPass) Run(c *Context) { p.emit(c) }

func TestManagerOrdersAndAttributes(t *testing.T) {
	prog := ir.NewProgram()
	c := NewContext(prog)
	m := &Manager{Passes: []Pass{
		scriptedPass{"one", func(c *Context) {
			c.Warnf(Pos{Func: "a", Block: 0, Instr: -1}, "w1")
			c.Errorf(Pos{Func: "b", Block: 2, Instr: -1}, "e2")
		}},
		scriptedPass{"two", func(c *Context) {
			c.Errorf(Pos{Func: "b", Block: 1, Instr: -1}, "e1")
		}},
	}}
	diags := m.Run(c)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	// Errors first, then by position; the warning sinks to the end.
	if diags[0].Msg != "e1" || diags[1].Msg != "e2" || diags[2].Msg != "w1" {
		t.Fatalf("bad order: %v", diags)
	}
	if diags[0].Pass != "two" || diags[1].Pass != "one" {
		t.Fatalf("pass attribution wrong: %v", diags)
	}
	if !HasErrors(diags) {
		t.Fatal("HasErrors = false")
	}
	if d := FirstError(diags); d == nil || d.Msg != "e1" {
		t.Fatalf("FirstError = %v", d)
	}
	// The context is drained: a second run reports nothing stale.
	if again := m.Run(NewContext(prog)); HasErrors(again[2:]) {
		t.Fatal("stale diagnostics leaked")
	}
	if HasErrors(nil) || FirstError([]Diagnostic{{Sev: Warning}}) != nil {
		t.Fatal("warnings must not count as errors")
	}
}

func TestContextCachesGraphs(t *testing.T) {
	prog := ir.NewProgram()
	f := &ir.Func{Name: "g", NRegs: 1, RetType: ir.TVoid}
	if err := prog.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := f.NewBlock("")
	f.Entry = b
	b.Term = ir.Term{Op: ir.TermRet}
	c := NewContext(prog)
	if c.Graph(f) != c.Graph(f) {
		t.Fatal("Graph not cached")
	}
	if c.Loops(f) != c.Loops(f) {
		t.Fatal("Loops not cached")
	}
}

// mkFunc builds a one-function program; edges maps block index to successor
// indices (0 = ret, 1 = jmp, 2 = br).
func mkFunc(t *testing.T, n int, edges map[int][]int) (*ir.Program, *ir.Func) {
	t.Helper()
	p := ir.NewProgram()
	f := &ir.Func{Name: "g", NRegs: 1, RetType: ir.TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.NewBlock("")
	}
	f.Entry = f.Blocks[0]
	for i, b := range f.Blocks {
		succ := edges[i]
		switch len(succ) {
		case 0:
			b.Term = ir.Term{Op: ir.TermRet}
		case 1:
			b.Term = ir.Term{Op: ir.TermJmp, Then: f.Blocks[succ[0]]}
		case 2:
			b.Term = ir.Term{Op: ir.TermBr, Cond: 0, Then: f.Blocks[succ[0]], Else: f.Blocks[succ[1]], Site: -1, Orig: -1}
		}
	}
	return p, f
}

func msgs(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func countSev(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Sev == sev {
			n++
		}
	}
	return n
}

func TestCFGLintUnreachableNotDead(t *testing.T) {
	// Block 2 is unreachable and not marked dead.
	prog, f := mkFunc(t, 3, map[int][]int{0: {1}, 2: {1}})
	diags := Lint(prog, nil, nil)
	if !HasErrors(diags) {
		t.Fatalf("no error for unreachable block:\n%s", msgs(diags))
	}
	// Marking it dead clears the error.
	ir.MarkUnreachableDead(f)
	diags = Lint(prog, nil, nil)
	if HasErrors(diags) {
		t.Fatalf("dead-marked block still errors:\n%s", msgs(diags))
	}
}

func TestCFGLintSelfLoopAndIdenticalArms(t *testing.T) {
	// Block 1: side-effect-free jmp self-loop. Block 2 never runs.
	prog, _ := mkFunc(t, 2, map[int][]int{0: {1}, 1: {1}})
	diags := Lint(prog, nil, nil)
	if countSev(diags, Warning) == 0 {
		t.Fatalf("no warning for self-loop:\n%s", msgs(diags))
	}
	// Conditional branch with identical arms.
	prog2, _ := mkFunc(t, 2, map[int][]int{0: {1, 1}})
	diags2 := Lint(prog2, nil, nil)
	found := false
	for _, d := range diags2 {
		if strings.Contains(d.Msg, "identical arms") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no identical-arms warning:\n%s", msgs(diags2))
	}
}

func TestCFGLintBackEdgePred(t *testing.T) {
	// 0 -> 1(head) -> {2(body), 3(exit)}; 2 -> 1 via br whose taken arm is
	// the back edge, annotated not-taken.
	prog, f := mkFunc(t, 4, map[int][]int{0: {1}, 1: {2, 3}, 2: {1, 3}})
	f.Blocks[2].Term.Pred = ir.PredNotTaken
	diags := Lint(prog, nil, nil)
	found := false
	for _, d := range diags {
		if d.Sev == Warning && strings.Contains(d.Msg, "back edge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no back-edge warning:\n%s", msgs(diags))
	}
}

func pat(bits uint32, n uint8) statemachine.Pattern {
	return statemachine.Pattern{Bits: bits, Len: n}
}

func TestMachinesLoopWellFormed(t *testing.T) {
	m := &statemachine.LoopMachine{
		States:    []statemachine.Pattern{pat(0, 1), pat(1, 1)},
		PredTaken: []bool{false, true},
		Init:      1,
		Hits:      8, Total: 10,
	}
	prog, _ := mkFunc(t, 1, nil)
	diags := Lint(prog, []statemachine.Choice{{Site: 0, Kind: statemachine.KindLoop, Loop: m}}, nil)
	if len(diags) != 0 {
		t.Fatalf("well-formed machine flagged:\n%s", msgs(diags))
	}
}

func TestMachinesLoopIncompleteStateSet(t *testing.T) {
	// {0, 11} is not suffix-closed: shifting "0" on taken yields "1", which
	// no state matches.
	m := &statemachine.LoopMachine{
		States:    []statemachine.Pattern{pat(0, 1), pat(3, 2)},
		PredTaken: []bool{false, true},
		Init:      0,
	}
	prog, _ := mkFunc(t, 1, nil)
	diags := Lint(prog, []statemachine.Choice{{Site: 0, Kind: statemachine.KindLoop, Loop: m}}, nil)
	d := FirstError(diags)
	if d == nil || !strings.Contains(d.Msg, "incomplete") {
		t.Fatalf("incomplete state set not diagnosed:\n%s", msgs(diags))
	}
}

func TestMachinesExitAndScores(t *testing.T) {
	bad := &statemachine.ExitMachine{N: 1, ExitTaken: true, PredTaken: []bool{true}}
	prog, _ := mkFunc(t, 1, nil)
	diags := Lint(prog, []statemachine.Choice{{Site: 0, Kind: statemachine.KindExit, Exit: bad}}, nil)
	if !HasErrors(diags) {
		t.Fatalf("1-state exit machine not diagnosed:\n%s", msgs(diags))
	}
	// Hits > Total on any choice is an error.
	diags = Lint(prog, []statemachine.Choice{{Site: 0, Kind: statemachine.KindProfile, Hits: 5, Total: 3}}, nil)
	if !HasErrors(diags) {
		t.Fatalf("hits > total not diagnosed:\n%s", msgs(diags))
	}
}

func TestMachinesPathMajorityMismatch(t *testing.T) {
	pm := &statemachine.PathMachine{
		Paths:      []profile.PathKey{1},
		PredTaken:  []bool{false},
		StatePairs: []profile.Pair{{Taken: 9, NotTaken: 1}}, // majority taken
		CatchPred:  false,
		CatchPair:  profile.Pair{Taken: 1, NotTaken: 2},
	}
	prog, _ := mkFunc(t, 1, nil)
	diags := Lint(prog, []statemachine.Choice{{Site: 0, Kind: statemachine.KindPath, Path: pm}}, nil)
	d := FirstError(diags)
	if d == nil || !strings.Contains(d.Msg, "majority") {
		t.Fatalf("path majority mismatch not diagnosed:\n%s", msgs(diags))
	}
}

func TestProfileConsistency(t *testing.T) {
	prof := profile.New(2, profile.Options{})
	outcomes := []bool{true, true, false, true, false, false, true, true, true, false, true, true}
	for i, o := range outcomes {
		prof.RecordBranch(int32(i%2), o)
	}
	prog, _ := mkFunc(t, 1, nil)
	if diags := Lint(prog, nil, prof); HasErrors(diags) {
		t.Fatalf("consistent profile flagged:\n%s", msgs(diags))
	}
	// Corrupt the aggregate counts: the stream no longer matches.
	prof.Counts.Taken[0]++
	diags := Lint(prog, nil, prof)
	if !HasErrors(diags) {
		t.Fatalf("corrupted counts not diagnosed:\n%s", msgs(diags))
	}
}
