package analysis

import (
	"repro/internal/indirect"
	"repro/internal/ir"
)

// VerifyIndirect runs the case-clustering equivalence verifier and converts
// each failure into an Error diagnostic, so drivers report the indirect
// family's translation validation through the same channel as the branch
// family's. orig is the pre-transform snapshot, prog the clustered program,
// prov the provenance indirect.Cluster returned.
func VerifyIndirect(orig, prog *ir.Program, prov *indirect.Provenance) []Diagnostic {
	var diags []Diagnostic
	for _, err := range indirect.Verify(orig, prog, prov) {
		diags = append(diags, Diagnostic{
			Pass: "indirect-equivalence",
			Sev:  Error,
			Pos:  Pos{Block: -1, Instr: -1},
			Msg:  err.Error(),
		})
	}
	return diags
}
