package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// This file assembles the static predictability report: the Ball–Larus
// heuristic evidence (heuristics.go) merged with the SCCP branch facts
// (sccp.go) into one per-site record, plus the StaticPredict pass that
// surfaces statically-decided branches as diagnostics. The report is the
// engine's public product — predict.StaticHeuristic scores it against
// recorded traces, replicate's static budget mode skips its decided sites,
// and kralld's /v1/analyze endpoint serialises it.

// SiteReport is the full static-prediction record for one branch site.
type SiteReport struct {
	Site int32
	Func string
	// Prob is the Dempster–Shafer combined taken probability (0.5 when no
	// heuristic fired and SCCP proved nothing).
	Prob float64
	// Confidence is |Prob−0.5|·2; 1 for SCCP-decided sites.
	Confidence float64
	// Fired lists the heuristics that contributed.
	Fired []Heuristic
	// LoopDepth is the branch block's loop nesting depth (0 = no loop).
	LoopDepth int
	// Fact is the SCCP verdict; when it decides the branch it overrides
	// the heuristic probability.
	Fact BranchFact
	// Pred is the final static direction for the site; PredNone for
	// switch sites.
	Pred ir.Prediction
	// Switch marks a multi-way dispatch site: no two-way direction
	// applies, and the indirect clustering family owns its prediction.
	Switch bool
}

// Heuristics renders the fired heuristic names, comma-separated.
func (s *SiteReport) Heuristics() string {
	if len(s.Fired) == 0 {
		return "-"
	}
	names := make([]string, len(s.Fired))
	for i, h := range s.Fired {
		names[i] = h.String()
	}
	return strings.Join(names, ",")
}

// StaticReport is the whole-program static predictability report, indexed
// by branch site ID.
type StaticReport struct {
	Sites []SiteReport
}

// BuildStaticReport runs the heuristic and SCCP analyses over a
// branch-numbered program and merges their results. SCCP facts win where
// they decide a site: an always-taken proof forces probability 1, a
// never-taken (dead-branch) proof forces 0, and an unreachable branch keeps
// its heuristic probability (it never executes, so any direction scores
// identically) but is flagged for the report.
func BuildStaticReport(prog *ir.Program) (*StaticReport, error) {
	c := NewContext(prog)
	hs := HeuristicSites(c)
	sccp, err := SCCP(prog)
	if err != nil {
		return nil, err
	}
	r := &StaticReport{Sites: make([]SiteReport, len(hs))}
	for i := range hs {
		h := &hs[i]
		s := &r.Sites[i]
		*s = SiteReport{
			Site:      h.Site,
			Func:      h.Func,
			Prob:      h.Prob,
			Fired:     h.Fired,
			LoopDepth: h.LoopDepth,
			Pred:      h.Prediction(),
			Switch:    h.Switch,
		}
		if i < len(sccp.Facts) {
			s.Fact = sccp.Facts[i]
		}
		if !s.Switch {
			switch s.Fact {
			case FactAlwaysTaken:
				s.Prob, s.Pred = 1, ir.PredTaken
			case FactNeverTaken:
				s.Prob, s.Pred = 0, ir.PredNotTaken
			}
		}
		s.Confidence = abs2(s.Prob)
	}
	return r, nil
}

func abs2(p float64) float64 {
	d := p - 0.5
	if d < 0 {
		d = -d
	}
	return d * 2
}

// Predictions returns the per-site static directions, indexed by site ID —
// the input shape predict.StaticHeuristic and replicate.Annotate expect.
func (r *StaticReport) Predictions() []ir.Prediction {
	out := make([]ir.Prediction, len(r.Sites))
	for i := range r.Sites {
		out[i] = r.Sites[i].Pred
	}
	return out
}

// DecidedSites flags the sites SCCP decided (always-taken, never-taken, or
// unreachable), indexed by site ID — replication budget spent on these is
// wasted, and replicate's static budget mode skips them.
func (r *StaticReport) DecidedSites() []bool {
	out := make([]bool, len(r.Sites))
	for i := range r.Sites {
		out[i] = r.Sites[i].Fact != FactNone
	}
	return out
}

// Decided counts the sites SCCP decided.
func (r *StaticReport) Decided() int {
	n := 0
	for i := range r.Sites {
		if r.Sites[i].Fact != FactNone {
			n++
		}
	}
	return n
}

// StaticPredict is the diagnostics face of the static prediction engine: it
// reports every SCCP-decided branch as a warning — "always-taken" for a
// condition proven non-zero, "dead-branch" for one proven zero (the taken
// arm can never execute) and for branches no executable path reaches.
// Warnings, not errors: a statically-decided branch is legal, just wasteful
// to replicate and worth surfacing.
type StaticPredict struct{}

// Name implements Pass.
func (StaticPredict) Name() string { return "staticpredict" }

// Run implements Pass. The program must have numbered branch sites.
func (StaticPredict) Run(c *Context) {
	sccp, err := SCCP(c.Prog)
	if err != nil {
		c.Errorf(Pos{Block: -1, Instr: -1}, "ssa construction failed: %v", err)
		return
	}
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			site := b.Term.Site
			if int(site) >= len(sccp.Facts) {
				continue
			}
			if b.Term.Op == ir.TermSwitch {
				if sccp.Facts[site] == FactUnreachable {
					c.Warnf(BlockPos(f, b), "dead-switch: site %d is unreachable on every executable path", site)
				}
				continue
			}
			// SwTest branches share the governing switch's site; the fact
			// there describes the switch, not this branch.
			if b.Term.Op != ir.TermBr || b.Term.SwTest {
				continue
			}
			switch sccp.Facts[site] {
			case FactAlwaysTaken:
				c.Warnf(BlockPos(f, b), "always-taken: site %d condition is provably non-zero; not-taken arm b%d is dead", site, b.Term.Else.ID)
			case FactNeverTaken:
				c.Warnf(BlockPos(f, b), "dead-branch: site %d condition is provably zero; taken arm b%d is dead", site, b.Term.Then.ID)
			case FactUnreachable:
				c.Warnf(BlockPos(f, b), "dead-branch: site %d is unreachable on every executable path", site)
			}
		}
	}
}

// FormatSiteTable renders the per-site report as an aligned text table, the
// output of krallcheck -predict for a single workload.
func FormatSiteTable(w *strings.Builder, name string, r *StaticReport) {
	fmt.Fprintf(w, "static prediction: %s (%d sites, %d decided)\n", name, len(r.Sites), r.Decided())
	fmt.Fprintf(w, "%6s  %-16s %5s  %5s  %5s  %-12s  %s\n", "site", "func", "prob", "conf", "depth", "fact", "heuristics")
	for i := range r.Sites {
		s := &r.Sites[i]
		fmt.Fprintf(w, "%6d  %-16s %5.3f  %5.3f  %5d  %-12s  %s\n",
			s.Site, s.Func, s.Prob, s.Confidence, s.LoopDepth, s.Fact, s.Heuristics())
	}
}
