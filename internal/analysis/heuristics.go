package analysis

import (
	"math"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// This file implements the program-based (profile-free) half of the static
// branch prediction engine: Ball–Larus-style heuristics [BL93] adapted to the
// BL IR, with the hit rates of Wu–Larus [WL94] combined by Dempster–Shafer
// evidence theory into one per-site taken probability. Each heuristic that
// fires on a branch contributes a probability that the branch is taken; two
// pieces of evidence p1, p2 combine as
//
//	p = p1·p2 / (p1·p2 + (1−p1)·(1−p2))
//
// which is symmetric, associative, and has 0.5 as its identity — a heuristic
// that does not fire contributes nothing, and agreeing heuristics reinforce
// each other while disagreeing ones cancel. DESIGN.md §9 derives the rule
// and argues the soundness split against the SCCP facts in sccp.go.

// Heuristic identifies one branch-prediction heuristic. The loop heuristics
// come from the CFG's loop forest; the rest inspect the terminator's
// condition and the successor blocks.
type Heuristic uint8

const (
	// HeurLoopBranch: exactly one arm is a back edge; predict it (the loop
	// continues).
	HeurLoopBranch Heuristic = iota
	// HeurLoopExit: inside a loop, exactly one arm leaves it; predict the
	// staying arm.
	HeurLoopExit
	// HeurLoopHeader: exactly one arm enters a loop (its target is the
	// header of a loop not containing the branch); predict entering it.
	HeurLoopHeader
	// HeurOpcode: the condition is a comparison; equality tests and
	// less-than style tests predict not-taken, their negations taken.
	HeurOpcode
	// HeurGuard: the condition compares against a constant — an equality-
	// to-constant, sign test, or bounds check; sharpens HeurOpcode.
	HeurGuard
	// HeurCall: exactly one arm calls a subroutine; predict the other arm.
	HeurCall
	// HeurReturn: exactly one arm returns; predict the other arm.
	HeurReturn
	// HeurStore: exactly one arm stores to a global; predict the other arm.
	HeurStore

	numHeuristics
)

func (h Heuristic) String() string {
	switch h {
	case HeurLoopBranch:
		return "loop-branch"
	case HeurLoopExit:
		return "loop-exit"
	case HeurLoopHeader:
		return "loop-header"
	case HeurOpcode:
		return "opcode"
	case HeurGuard:
		return "guard"
	case HeurCall:
		return "call"
	case HeurReturn:
		return "return"
	case HeurStore:
		return "store"
	}
	return "heuristic(?)"
}

// heurProb is each heuristic's probability that its predicted direction is
// the one the branch takes, following the Wu–Larus hit rates with the loop
// heuristics calibrated on this repository's catalog.
var heurProb = [numHeuristics]float64{
	HeurLoopBranch: 0.88,
	HeurLoopExit:   0.80,
	HeurLoopHeader: 0.75,
	HeurOpcode:     0.62,
	HeurGuard:      0.72,
	HeurCall:       0.78,
	HeurReturn:     0.72,
	HeurStore:      0.55,
}

// combineDS is the Dempster–Shafer combination of two taken probabilities.
// The degenerate poles (0 or 1 against its complement) cannot arise from
// heurProb, which stays strictly inside (0, 1).
func combineDS(p1, p2 float64) float64 {
	num := p1 * p2
	den := num + (1-p1)*(1-p2)
	if den == 0 {
		return 0.5
	}
	return num / den
}

// SiteHeuristics is the heuristic evidence collected for one branch site.
type SiteHeuristics struct {
	Site int32
	Func string
	// Prob is the Dempster–Shafer combined probability that the branch is
	// taken; 0.5 when no heuristic fired.
	Prob float64
	// Fired lists the heuristics that contributed, in Heuristic order.
	Fired []Heuristic
	// LoopDepth is the nesting depth of the branch block (0 = not in a
	// loop).
	LoopDepth int
	// Switch marks a multi-way dispatch site. The two-way heuristics do
	// not apply there; the indirect clustering family predicts such sites
	// from profiled target frequencies instead.
	Switch bool
}

// Prediction maps the combined probability to a static direction: strictly
// above one half predicts taken, everything else not-taken (the
// repository-wide tie convention). Switch sites have no two-way direction
// and predict nothing.
func (sh *SiteHeuristics) Prediction() ir.Prediction {
	if sh.Switch {
		return ir.PredNone
	}
	if sh.Prob > 0.5 {
		return ir.PredTaken
	}
	return ir.PredNotTaken
}

// Confidence is the distance from indifference, scaled to [0, 1].
func (sh *SiteHeuristics) Confidence() float64 {
	return math.Abs(sh.Prob-0.5) * 2
}

// HeuristicSites runs every heuristic over each conditional branch of the
// program, using the Context's cached CFGs and loop forests. Branch sites
// must be numbered; the returned slice is indexed by site ID.
func HeuristicSites(c *Context) []SiteHeuristics {
	n := 0
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			t := &b.Term
			if (t.Op == ir.TermBr && !t.SwTest) || t.Op == ir.TermSwitch {
				n++
			}
		}
	}
	out := make([]SiteHeuristics, n)
	for _, f := range c.Prog.Funcs {
		g := c.Graph(f)
		lf := c.Loops(f)
		for _, b := range f.Blocks {
			switch {
			case b.Term.Op == ir.TermSwitch:
				// Multi-way dispatch: no two-way evidence applies.
				out[b.Term.Site] = SiteHeuristics{
					Site: b.Term.Site, Func: f.Name, Prob: 0.5, Switch: true,
				}
			case b.Term.Op == ir.TermBr && !b.Term.SwTest:
				sh := &out[b.Term.Site]
				*sh = siteHeuristics(f, g, lf, b)
			}
		}
	}
	return out
}

// siteHeuristics evaluates one branch. Evidence accumulates multiplicatively
// via combineDS; each heuristic contributes its hit rate oriented toward the
// arm it predicts.
func siteHeuristics(f *ir.Func, g *cfg.Graph, lf *cfg.LoopForest, b *ir.Block) SiteHeuristics {
	sh := SiteHeuristics{Site: b.Term.Site, Func: f.Name, Prob: 0.5}
	then, els := b.Term.Then, b.Term.Else
	loop := lf.InnermostLoop(b)
	if loop != nil {
		sh.LoopDepth = loop.Depth
	}
	fire := func(h Heuristic, taken bool) {
		p := heurProb[h]
		if !taken {
			p = 1 - p
		}
		sh.Prob = combineDS(sh.Prob, p)
		sh.Fired = append(sh.Fired, h)
	}

	// Loop branch: follow the unique back edge.
	thenBack, elseBack := g.IsBackEdge(b, then), g.IsBackEdge(b, els)
	if thenBack != elseBack {
		fire(HeurLoopBranch, thenBack)
	}
	// Loop exit: stay in the loop.
	if loop != nil && !thenBack && !elseBack {
		thenExits, elseExits := !loop.Contains(then), !loop.Contains(els)
		if thenExits != elseExits {
			fire(HeurLoopExit, elseExits)
		}
	}
	// Loop header: prefer the arm that enters a loop the branch is outside
	// of (the branch guards the loop's preheader).
	thenEnters, elseEnters := entersLoop(lf, b, then), entersLoop(lf, b, els)
	if thenEnters != elseEnters {
		fire(HeurLoopHeader, thenEnters)
	}

	// Condition-shape heuristics need the comparison defining the condition.
	if cmp := condCmp(b); cmp != nil {
		if p, ok := comparePrediction(cmp.Op); ok {
			fire(HeurOpcode, p == ir.PredTaken)
		}
		if p, ok := guardPrediction(cmp); ok {
			fire(HeurGuard, p == ir.PredTaken)
		}
	}

	// Successor-shape heuristics: avoid calls, returns, and stores.
	thenCall, elseCall := blockHasOp(then, ir.OpCall), blockHasOp(els, ir.OpCall)
	if thenCall != elseCall {
		fire(HeurCall, !thenCall)
	}
	thenRet, elseRet := then.Term.Op == ir.TermRet, els.Term.Op == ir.TermRet
	if thenRet != elseRet {
		fire(HeurReturn, !thenRet)
	}
	thenStore := blockHasOp(then, ir.OpStoreG) || blockHasOp(then, ir.OpStoreElem)
	elseStore := blockHasOp(els, ir.OpStoreG) || blockHasOp(els, ir.OpStoreElem)
	if thenStore != elseStore {
		fire(HeurStore, !thenStore)
	}
	return sh
}

// entersLoop reports whether the edge b→succ enters a natural loop that does
// not contain b (succ is such a loop's header).
func entersLoop(lf *cfg.LoopForest, b, succ *ir.Block) bool {
	l := lf.InnermostLoop(succ)
	for ; l != nil; l = l.Parent {
		if l.Header == succ && !l.Contains(b) {
			return true
		}
	}
	return false
}

// cmpInstr is the comparison that defines a branch condition, with constant
// operand values resolved by a backward scan of the branch block.
type cmpInstr struct {
	Op         ir.Op
	A, B       ir.Reg
	AConst     bool
	BConst     bool
	AImm, BImm int64
	AFloat     bool
	BFloat     bool
}

// condCmp locates the comparison defining the branch condition within the
// branch block (through mov chains), mirroring predict.Analyze's extraction
// but additionally resolving constant operands.
func condCmp(b *ir.Block) *cmpInstr {
	cond := b.Term.Cond
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if !in.Op.HasDst() || in.Dst != cond {
			continue
		}
		if in.Op == ir.OpMov {
			cond = in.A
			continue
		}
		if !in.Op.IsCompare() {
			return nil
		}
		cmp := &cmpInstr{Op: in.Op, A: in.A, B: in.B}
		cmp.AImm, cmp.AFloat, cmp.AConst = constBefore(b, i, in.A)
		cmp.BImm, cmp.BFloat, cmp.BConst = constBefore(b, i, in.B)
		return cmp
	}
	return nil
}

// constBefore scans backward from instruction idx for the most recent
// definition of reg inside the block; a const definition yields its bits.
func constBefore(b *ir.Block, idx int, reg ir.Reg) (imm int64, isFloat, ok bool) {
	for i := idx - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if !in.Op.HasDst() || in.Dst != reg {
			continue
		}
		switch in.Op {
		case ir.OpConstI:
			return in.Imm, false, true
		case ir.OpConstF:
			return in.Imm, true, true
		}
		return 0, false, false
	}
	return 0, false, false
}

// comparePrediction is the opcode heuristic over BL's compare opcodes:
// equality and less-than style tests predict not-taken (their taken side is
// usually the rare case), the negations predict taken.
func comparePrediction(op ir.Op) (ir.Prediction, bool) {
	switch op {
	case ir.OpEqI, ir.OpEqF, ir.OpLtI, ir.OpLtF, ir.OpLeI, ir.OpLeF:
		return ir.PredNotTaken, true
	case ir.OpNeI, ir.OpNeF, ir.OpGtI, ir.OpGtF, ir.OpGeI, ir.OpGeF:
		return ir.PredTaken, true
	}
	return ir.PredNone, false
}

// guardPrediction fires on guard shapes — comparisons against a constant:
//
//   - equality to a constant is rarely true (sentinel and flag tests);
//   - sign tests against zero rarely see negative values;
//   - bounds checks against a constant array length rarely fire.
//
// All three predict the direction away from the "rare" outcome.
func guardPrediction(cmp *cmpInstr) (ir.Prediction, bool) {
	constSide := 0
	switch {
	case cmp.BConst && !cmp.AConst:
		constSide = 2
	case cmp.AConst && !cmp.BConst:
		constSide = 1
	default:
		return ir.PredNone, false
	}
	// Orient the comparison as "variable OP constant".
	op := cmp.Op
	if constSide == 1 {
		op = swapCompare(op)
	}
	switch op {
	case ir.OpEqI, ir.OpEqF:
		return ir.PredNotTaken, true
	case ir.OpNeI, ir.OpNeF:
		return ir.PredTaken, true
	case ir.OpLtI, ir.OpLeI:
		// v < c: a sign test (c == 0) predicts non-negative; a bounds
		// check (c > 0) predicts in-bounds, i.e. taken.
		c := cmp.BImm
		if constSide == 1 {
			c = cmp.AImm
		}
		if c <= 0 {
			return ir.PredNotTaken, true
		}
		return ir.PredTaken, true
	case ir.OpGtI, ir.OpGeI:
		c := cmp.BImm
		if constSide == 1 {
			c = cmp.AImm
		}
		if c <= 0 {
			return ir.PredTaken, true
		}
		return ir.PredNotTaken, true
	}
	return ir.PredNone, false
}

// swapCompare mirrors a comparison so its operands can be swapped:
// c OP v  ==  v OP' c.
func swapCompare(op ir.Op) ir.Op {
	switch op {
	case ir.OpLtI:
		return ir.OpGtI
	case ir.OpLeI:
		return ir.OpGeI
	case ir.OpGtI:
		return ir.OpLtI
	case ir.OpGeI:
		return ir.OpLeI
	case ir.OpLtF:
		return ir.OpGtF
	case ir.OpLeF:
		return ir.OpGeF
	case ir.OpGtF:
		return ir.OpLtF
	case ir.OpGeF:
		return ir.OpLeF
	}
	return op
}

// blockHasOp reports whether the block contains an instruction with the
// given opcode.
func blockHasOp(b *ir.Block, op ir.Op) bool {
	for i := range b.Instrs {
		if b.Instrs[i].Op == op {
			return true
		}
	}
	return false
}
