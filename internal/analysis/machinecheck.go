package analysis

import (
	"repro/internal/ir"
	"repro/internal/statemachine"
)

// Machines checks well-formedness of the selected prediction machines:
// transition functions are total and deterministic over valid states, every
// state is reachable from the initial state, per-state majority data is
// consistent, and score counters are sane. Applied joint machines (recorded
// in the provenance) get the same treatment.
type Machines struct{}

// Name implements Pass.
func (Machines) Name() string { return "machines" }

// Run implements Pass.
func (Machines) Run(c *Context) {
	for i := range c.Choices {
		ch := &c.Choices[i]
		pos := sitePos(c, ch.Site)
		switch ch.Kind {
		case statemachine.KindLoop:
			checkLoopMachine(c, pos, ch.Loop)
		case statemachine.KindExit:
			checkExitMachine(c, pos, ch.Exit)
		case statemachine.KindPath:
			checkPathMachine(c, pos, ch.Path)
		}
		if ch.Hits > ch.Total {
			c.Errorf(pos, "site %d: machine scored %d hits out of %d events", ch.Site, ch.Hits, ch.Total)
		}
	}
	for _, app := range c.Prov.Apps() {
		checkModel(c, app.M)
	}
}

// sitePos locates the first current block descending from branch site.
func sitePos(c *Context, site int32) Pos {
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr && b.Term.Orig == site {
				return BlockPos(f, b)
			}
		}
	}
	return Pos{}
}

func checkLoopMachine(c *Context, pos Pos, m *statemachine.LoopMachine) {
	if m == nil {
		c.Errorf(pos, "loop choice without a machine")
		return
	}
	n := m.NumStates()
	if len(m.PredTaken) != n {
		c.Errorf(pos, "loop machine has %d predictions for %d states", len(m.PredTaken), n)
		return
	}
	if m.Init < 0 || m.Init >= n {
		c.Errorf(pos, "loop machine initial state %d out of range (%d states)", m.Init, n)
		return
	}
	// Totality + reachability in one BFS over the transition function.
	seen := make([]bool, n)
	seen[m.Init] = true
	queue := []int{m.Init}
	total := true
	for i := 0; i < n && total; i++ {
		for _, taken := range [2]bool{false, true} {
			if _, ok := m.NextIndex(i, taken); !ok {
				c.Errorf(pos, "loop machine state %v has no transition on %v: state set is incomplete", m.States[i], taken)
				total = false
			}
		}
	}
	if !total {
		return
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, taken := range [2]bool{false, true} {
			j, _ := m.NextIndex(i, taken)
			if !seen[j] {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			c.Warnf(pos, "loop machine state %v is unreachable from the initial state", m.States[i])
		}
	}
}

func checkExitMachine(c *Context, pos Pos, m *statemachine.ExitMachine) {
	if m == nil {
		c.Errorf(pos, "exit choice without a machine")
		return
	}
	if m.N < 2 {
		c.Errorf(pos, "exit machine has %d states, need at least 2", m.N)
		return
	}
	if len(m.PredTaken) != m.N {
		c.Errorf(pos, "exit machine has %d predictions for %d states", len(m.PredTaken), m.N)
		return
	}
	for i := 0; i < m.N; i++ {
		for _, taken := range [2]bool{false, true} {
			if j := m.Next(i, taken); j < 0 || j >= m.N {
				c.Errorf(pos, "exit machine transition from state %d on %v leaves the state set (%d)", i, taken, j)
			}
		}
	}
}

func checkPathMachine(c *Context, pos Pos, m *statemachine.PathMachine) {
	if m == nil {
		c.Errorf(pos, "path choice without a machine")
		return
	}
	if len(m.PredTaken) != len(m.Paths) || len(m.StatePairs) != len(m.Paths) {
		c.Errorf(pos, "path machine has %d paths, %d predictions, %d count pairs", len(m.Paths), len(m.PredTaken), len(m.StatePairs))
		return
	}
	for i := range m.Paths {
		if m.PredTaken[i] != m.StatePairs[i].MajorityTaken() {
			c.Errorf(pos, "path state %v predicts %v against its majority counts %v", m.Paths[i], m.PredTaken[i], m.StatePairs[i])
		}
		if m.StatePairs[i].Total() == 0 {
			c.Warnf(pos, "path state %v was selected with empty majority counts", m.Paths[i])
		}
	}
	if m.CatchPred != m.CatchPair.MajorityTaken() {
		c.Errorf(pos, "path catch-all predicts %v against its majority counts %v", m.CatchPred, m.CatchPair)
	}
}

// checkModel checks an applied machine model (notably §6 joint machines,
// which exist only as applications) for total in-range transitions.
func checkModel(c *Context, m Machine) {
	jm, ok := m.(JointMachineModel)
	if !ok {
		return // loop/exit machines are covered through their Choice
	}
	n := jm.NumStates()
	if n < 1 {
		c.Errorf(Pos{}, "joint machine has no states")
		return
	}
	if init := jm.InitState(); init < 0 || init >= n {
		c.Errorf(Pos{}, "joint machine initial state %d out of range (%d states)", init, n)
		return
	}
	for s := 0; s < n; s++ {
		for bi := range jm.M.Branches {
			for _, taken := range [2]bool{false, true} {
				if _, ok := jm.Next(s, bi, taken); !ok {
					c.Errorf(Pos{}, "joint machine transition from state %d, branch %d on %v is undefined", s, bi, taken)
				}
			}
		}
	}
}
