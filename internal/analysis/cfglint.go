package analysis

import (
	"repro/internal/ir"
)

// CFGLint flags suspicious control-flow shapes: unreachable blocks that are
// not marked dead, side-effect-free infinite self-loops, conditional
// branches with identical arms (an Error, matching ir.Validate's rejection
// of the degenerate shape — ssa.Build folds it to a jump rather than let it
// reach the VM), and back edges annotated as predicted against their loop.
// The back-edge finding is advisory (Warning): state-machine replication
// legitimately predicts against a back edge in exit-biased states, which is
// exactly why this pass is not part of the Apply-time verification set.
type CFGLint struct{}

// Name implements Pass.
func (CFGLint) Name() string { return "cfglint" }

// Run implements Pass.
func (CFGLint) Run(c *Context) {
	for _, f := range c.Prog.Funcs {
		g := c.Graph(f)
		for _, b := range f.Blocks {
			if !g.Reachable(b) {
				if !b.Dead {
					c.Errorf(BlockPos(f, b), "unreachable from entry and not marked dead")
				}
				continue
			}
			switch b.Term.Op {
			case ir.TermJmp:
				if b.Term.Then == b && !hasSideEffects(b) {
					c.Warnf(BlockPos(f, b), "infinite self-loop with no side effects")
				}
			case ir.TermBr:
				if b.Term.Then == b.Term.Else {
					c.Errorf(BlockPos(f, b), "conditional branch with identical arms")
					if b.Term.Then == b && !hasSideEffects(b) {
						c.Warnf(BlockPos(f, b), "infinite self-loop with no side effects")
					}
				}
				checkBackEdgePred(c, f, b)
			}
		}
	}
}

// checkBackEdgePred warns when a branch's static prediction points away
// from its back edge: loop-closing branches are overwhelmingly taken, so a
// contrary annotation usually means a profile/transform mismatch (it is
// legitimate in exit-biased machine states, hence a Warning).
func checkBackEdgePred(c *Context, f *ir.Func, b *ir.Block) {
	if b.Term.Pred == ir.PredNone {
		return
	}
	g := c.Graph(f)
	if g.IsBackEdge(b, b.Term.Then) && b.Term.Pred == ir.PredNotTaken {
		c.Warnf(BlockPos(f, b), "back edge to %s predicted not-taken", b.Term.Then)
	}
	if g.IsBackEdge(b, b.Term.Else) && b.Term.Pred == ir.PredTaken {
		c.Warnf(BlockPos(f, b), "back edge to %s predicted taken (away from the fall-through back edge)", b.Term.Else)
	}
}

// hasSideEffects reports whether executing the block can be observed: calls
// (which may print, write globals, or diverge themselves), global stores,
// and checksum output count.
func hasSideEffects(b *ir.Block) bool {
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case ir.OpCall, ir.OpStoreG, ir.OpStoreElem, ir.OpPrint:
			return true
		}
	}
	return false
}
