package analysis_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/replicate"
	"repro/internal/statemachine"
)

// periodicSrc has a strongly periodic branch inside a hot loop, so machine
// selection always replicates it: a deterministic target for mutation tests.
const periodicSrc = `
func main() int {
    var s int = 0;
    for var i int = 0; i < 4000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; } else { s = s + 2; }
    }
    print(s);
    return s;
}`

type pipeOut struct {
	prog    *ir.Program
	choices []statemachine.Choice
	preds   []ir.Prediction
}

// pipe compiles src and runs the profiling half of the pipeline.
func pipe(t *testing.T, src string, maxStates int) pipeOut {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	n := prog.NumberBranches(true)
	if n == 0 {
		t.Fatal("no branch sites")
	}
	prof := profile.New(n, profile.Options{})
	ref := interp.New(prog)
	ref.MaxSteps = 10_000_000
	ref.Hook = prof.Branch
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	feats := predict.Analyze(prog)
	choices := statemachine.Select(prof, feats, statemachine.Options{MaxStates: maxStates, MaxPathLen: 1})
	preds := predict.ProfileStatic(prof.Counts).Preds
	return pipeOut{prog: prog, choices: choices, preds: preds}
}

// applyVerified replicates p.prog (on a clone) with verification on and
// requires a clean pass.
func applyVerified(t *testing.T, p pipeOut, joint bool) (*ir.Program, *replicate.Stats) {
	t.Helper()
	clone := ir.CloneProgram(p.prog)
	opts := replicate.Options{Verify: true}
	var st *replicate.Stats
	var err error
	if joint {
		st, err = replicate.ApplyJoint(clone, p.choices, p.preds, opts)
	} else {
		st, err = replicate.ApplyOpts(clone, p.choices, p.preds, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !st.Verified || analysis.HasErrors(st.Diags) {
		t.Fatalf("verification not clean: %v", st.Diags)
	}
	if st.LoopApplied == 0 {
		t.Fatal("nothing replicated; mutation target missing")
	}
	return clone, st
}

// reverify re-runs the verifier against the snapshot retained in st, after
// the caller mutated prog.
func reverify(p pipeOut, prog *ir.Program, st *replicate.Stats) []analysis.Diagnostic {
	return analysis.Verify(st.Orig, prog, st.Prov, p.choices, p.preds)
}

// TestVerifyCleanOnGeneratedPrograms is the framework's own property test:
// both replication drivers, run over generated programs with verification
// enabled, must come back clean (the drivers fail on ErrVerify, so a plain
// error check suffices).
func TestVerifyCleanOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := prog.NumberBranches(true)
		if n == 0 {
			continue
		}
		prof := profile.New(n, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 10_000_000
		ref.Hook = prof.Branch
		if _, err := ref.Run(); err != nil {
			continue
		}
		feats := predict.Analyze(prog)
		choices := statemachine.Select(prof, feats, statemachine.Options{
			MaxStates: 2 + int(seed%4), MaxPathLen: 1 + int(seed%2),
		})
		preds := predict.ProfileStatic(prof.Counts).Preds
		for _, joint := range [2]bool{false, true} {
			clone := ir.CloneProgram(prog)
			opts := replicate.Options{Verify: true, MaxSizeFactor: 4}
			var st *replicate.Stats
			if joint {
				st, err = replicate.ApplyJoint(clone, choices, preds, opts)
			} else {
				st, err = replicate.ApplyOpts(clone, choices, preds, opts)
			}
			if err != nil {
				t.Fatalf("seed %d joint=%v: %v", seed, joint, err)
			}
			if !st.Verified {
				t.Fatalf("seed %d joint=%v: Verified not set", seed, joint)
			}
		}
	}
}

// TestVerifyCatchesWrongSuccessor corrupts one successor edge of the
// replicated program — swapping a branch's arms so each points at a copy of
// the wrong original block — and requires the verifier to reject it. The
// mutant still passes ir.Validate (both targets are in-function and
// distinct): only the equivalence check can see the provenance mismatch.
func TestVerifyCatchesWrongSuccessor(t *testing.T) {
	p := pipe(t, periodicSrc, 2)
	prog, st := applyVerified(t, p, false)

	var mf *ir.Func
	var mb *ir.Block
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op != ir.TermBr || b.Term.Then == b.Term.Else {
				continue
			}
			to, okT := st.Prov.Origin(b.Term.Then)
			eo, okE := st.Prov.Origin(b.Term.Else)
			if okT && okE && to != eo {
				mf, mb = f, b
				break
			}
		}
		if mb != nil {
			break
		}
	}
	if mb == nil {
		t.Fatal("no mutable branch found")
	}
	// Each arm now lands on a copy of the wrong original successor.
	mb.Term.Then, mb.Term.Else = mb.Term.Else, mb.Term.Then
	ir.MarkUnreachableDead(mf)
	if err := prog.Validate(); err != nil {
		t.Fatalf("mutant must stay structurally valid, got: %v", err)
	}
	diags := reverify(p, prog, st)
	d := analysis.FirstError(diags)
	if d == nil {
		t.Fatalf("wrong-successor mutation not caught:\n%v", diags)
	}
	if !strings.Contains(d.Msg, "successor") && !strings.Contains(d.Msg, "edge") {
		t.Fatalf("unexpected diagnostic for wrong successor: %s", d)
	}
}

// TestVerifyCatchesFlippedPrediction flips one annotated static prediction
// and requires the verifier to reject the program.
func TestVerifyCatchesFlippedPrediction(t *testing.T) {
	p := pipe(t, periodicSrc, 2)
	prog, st := applyVerified(t, p, false)

	var mb *ir.Block
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr && b.Term.Pred != ir.PredNone {
				mb = b
				break
			}
		}
		if mb != nil {
			break
		}
	}
	if mb == nil {
		t.Fatal("no annotated branch found")
	}
	if mb.Term.Pred == ir.PredTaken {
		mb.Term.Pred = ir.PredNotTaken
	} else {
		mb.Term.Pred = ir.PredTaken
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("mutant must stay structurally valid, got: %v", err)
	}
	diags := reverify(p, prog, st)
	d := analysis.FirstError(diags)
	if d == nil {
		t.Fatalf("flipped prediction not caught:\n%v", diags)
	}
	if !strings.Contains(d.Msg, "prediction") {
		t.Fatalf("unexpected diagnostic for flipped prediction: %s", d)
	}
}

// TestVerifyCatchesBodyEdit rewrites one instruction immediate: replication
// may only duplicate code, never change it.
func TestVerifyCatchesBodyEdit(t *testing.T) {
	p := pipe(t, periodicSrc, 2)
	prog, st := applyVerified(t, p, false)

	var mb *ir.Block
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 {
				mb = b
				break
			}
		}
		if mb != nil {
			break
		}
	}
	if mb == nil {
		t.Fatal("no instruction to mutate")
	}
	mb.Instrs[0].Imm += 41
	diags := reverify(p, prog, st)
	d := analysis.FirstError(diags)
	if d == nil || !strings.Contains(d.Msg, "instruction") {
		t.Fatalf("instruction edit not caught:\n%v", diags)
	}
}

// TestVerifyCatchesJointMutation repeats the successor corruption on the
// joint driver's output.
func TestVerifyCatchesJointMutation(t *testing.T) {
	p := pipe(t, periodicSrc, 2)
	prog, st := applyVerified(t, p, true)

	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op != ir.TermBr || b.Term.Then == b.Term.Else {
				continue
			}
			to, okT := st.Prov.Origin(b.Term.Then)
			eo, okE := st.Prov.Origin(b.Term.Else)
			if okT && okE && to != eo {
				b.Term.Then = b.Term.Else
				ir.MarkUnreachableDead(f)
				if analysis.FirstError(reverify(p, prog, st)) == nil {
					t.Fatal("joint successor mutation not caught")
				}
				return
			}
		}
	}
	t.Fatal("no mutable branch found")
}

// TestApplyRejectsCorruptMachine drives ErrVerify end to end: a machine
// whose per-state prediction disagrees with what replication wires in makes
// the driver itself fail with ErrVerify.
func TestApplyRejectsCorruptMachine(t *testing.T) {
	p := pipe(t, periodicSrc, 2)
	var loop *statemachine.LoopMachine
	for i := range p.choices {
		if p.choices[i].Kind == statemachine.KindLoop {
			loop = p.choices[i].Loop
		}
	}
	if loop == nil {
		t.Skip("no loop machine selected")
	}
	clone := ir.CloneProgram(p.prog)
	st, err := replicate.ApplyOpts(clone, p.choices, p.preds, replicate.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the machine after the fact and re-verify: the recorded
	// authority now disagrees with the wired predictions.
	for i := range loop.PredTaken {
		loop.PredTaken[i] = !loop.PredTaken[i]
	}
	if analysis.FirstError(reverify(p, clone, st)) == nil {
		t.Fatal("corrupted machine not caught on re-verification")
	}
	for i := range loop.PredTaken {
		loop.PredTaken[i] = !loop.PredTaken[i]
	}
	// An impossible machine score fails the driver itself with ErrVerify
	// (the Machines well-formedness pass runs as part of Verify).
	for i := range p.choices {
		if p.choices[i].Kind == statemachine.KindLoop {
			p.choices[i].Hits = p.choices[i].Total + 1
		}
	}
	clone2 := ir.CloneProgram(p.prog)
	_, err = replicate.ApplyOpts(clone2, p.choices, p.preds, replicate.Options{Verify: true})
	if !errors.Is(err, replicate.ErrVerify) {
		t.Fatalf("got %v, want ErrVerify", err)
	}
}
