package analysis

import (
	"math"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/ssa"
)

// This file implements sparse conditional constant propagation (Wegman–
// Zadeck) with an interval (value-range) lattice over the SSA form of
// internal/ssa. It proves branches one-way: a condition whose range excludes
// zero is always taken, one pinned to zero is never taken, and a block no
// executable edge reaches is dead. The proofs feed the static predictability
// report (decided sites need no replication budget) and the dead-branch /
// always-taken diagnostics of the StaticPredict pass.
//
// Soundness contract (asserted by FuzzStaticSoundness and the catalog
// consistency test): a branch proven one-way is never observed going the
// other way in any recorded trace. Everything the analysis cannot model —
// globals, array elements, call results, parameters, float arithmetic,
// potentially-wrapping integer arithmetic — is bottom (any value), and
// interval transfer functions mirror the interpreter's exact two's-
// complement semantics, collapsing to bottom whenever a bound computation
// could wrap.

// BranchFact is the SCCP verdict for one branch site.
type BranchFact uint8

const (
	// FactNone: the branch was not statically decided.
	FactNone BranchFact = iota
	// FactAlwaysTaken: the condition is provably non-zero on every
	// execution reaching the branch.
	FactAlwaysTaken
	// FactNeverTaken: the condition is provably zero; the taken arm is a
	// dead branch.
	FactNeverTaken
	// FactUnreachable: no executable path reaches the branch at all.
	FactUnreachable
)

func (f BranchFact) String() string {
	switch f {
	case FactAlwaysTaken:
		return "always-taken"
	case FactNeverTaken:
		return "never-taken"
	case FactUnreachable:
		return "unreachable"
	}
	return "undecided"
}

// Decided reports whether the fact pins the branch's direction.
func (f BranchFact) Decided() bool { return f == FactAlwaysTaken || f == FactNeverTaken }

// SCCPResult maps every numbered branch site to its verdict.
type SCCPResult struct {
	// Facts is indexed by branch site ID; sites the analysis never saw
	// (e.g. in functions SSA construction rejected) stay FactNone.
	Facts []BranchFact
}

// SCCP runs the analysis over every function of a branch-numbered program.
// The program is not modified; SSA construction works on a private lowering.
func SCCP(prog *ir.Program) (*SCCPResult, error) {
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			t := &b.Term
			if (t.Op == ir.TermBr && !t.SwTest) || t.Op == ir.TermSwitch {
				n++
			}
		}
	}
	res := &SCCPResult{Facts: make([]BranchFact, n)}
	sp, err := ssa.Build(prog)
	if err != nil {
		return nil, err
	}
	for _, f := range sp.Funcs {
		runSCCP(f, res)
	}
	return res, nil
}

// --- interval lattice ----------------------------------------------------

const (
	lTop    uint8 = iota // unvisited / no executable definition yet
	lIRange              // integer in [Lo, Hi]
	lFConst              // float constant; bits in Lo
	lBot                 // any value
)

// lval is one lattice element.
type lval struct {
	tag    uint8
	lo, hi int64
}

var (
	top = lval{tag: lTop}
	bot = lval{tag: lBot}
)

func iconst(c int64) lval      { return lval{tag: lIRange, lo: c, hi: c} }
func irange(lo, hi int64) lval { return lval{tag: lIRange, lo: lo, hi: hi} }
func fconst(bits int64) lval   { return lval{tag: lFConst, lo: bits} }
func (v lval) isConst() bool   { return v.tag == lIRange && v.lo == v.hi }
func (v lval) contains0() bool { return v.tag == lIRange && v.lo <= 0 && 0 <= v.hi }
func (v lval) eq(w lval) bool  { return v.tag == w.tag && v.lo == w.lo && v.hi == w.hi }
func fullRange() lval          { return irange(math.MinInt64, math.MaxInt64) }

// join is the lattice meet toward bottom: top is the identity, bottom
// absorbs, intervals union, and float constants stay only when equal.
func join(a, b lval) lval {
	switch {
	case a.tag == lTop:
		return b
	case b.tag == lTop:
		return a
	case a.tag == lBot || b.tag == lBot:
		return bot
	case a.tag != b.tag:
		return bot
	case a.tag == lFConst:
		if a.lo == b.lo {
			return a
		}
		return bot
	}
	return irange(min64(a.lo, b.lo), max64(a.hi, b.hi))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addOv adds with wrap detection.
func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		if a >= 0 {
			return 0, false
		}
		return a - b, true
	}
	return addOv(a, -b)
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	return p, true
}

// corners builds the tightest interval covering every given corner value;
// any wrapped corner collapses to the full range.
func corners(vals ...int64) lval {
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = min64(lo, v), max64(hi, v)
	}
	return irange(lo, hi)
}

// --- per-function driver -------------------------------------------------

// edgeRef identifies one incoming CFG edge as (target block, pred index).
type edgeRef struct {
	to  *ssa.Block
	idx int
}

type sccpState struct {
	f    *ssa.Func
	val  []lval // by value ID
	hits []int  // widening counter by value ID

	blockExec []bool // by block ID
	edgeExec  map[edgeRef]bool

	// thenEdge/elseEdge/jmpEdge give each block's outgoing pred indices in
	// its successors' Preds lists, reconstructed in build order; swEdge
	// holds a switch block's indices in Targets-then-Else order.
	thenEdge, elseEdge, jmpEdge []int
	swEdge                      map[int][]int

	users map[int][]*ssa.Value // value ID -> values consuming it
	conds map[int][]*ssa.Block // value ID -> blocks branching on it
	defIn map[int]*ssa.Block   // value ID -> defining block

	flowWork []edgeRef
	ssaWork  []*ssa.Value
}

// widenAfter caps how many times a value's interval may grow before its
// moving bounds are widened to the extremes, bounding the chain height.
const widenAfter = 8

func runSCCP(f *ssa.Func, res *SCCPResult) {
	st := &sccpState{
		f:         f,
		val:       make([]lval, f.NumValues()),
		hits:      make([]int, f.NumValues()),
		blockExec: make([]bool, len(f.Blocks)),
		edgeExec:  map[edgeRef]bool{},
		thenEdge:  make([]int, len(f.Blocks)),
		elseEdge:  make([]int, len(f.Blocks)),
		jmpEdge:   make([]int, len(f.Blocks)),
		swEdge:    map[int][]int{},
		users:     map[int][]*ssa.Value{},
		conds:     map[int][]*ssa.Block{},
		defIn:     map[int]*ssa.Block{},
	}
	// Reconstruct each edge's pred index by replaying Build's append order:
	// blocks in f.Blocks order, then-arm before else-arm.
	cursor := map[*ssa.Block]int{}
	take := func(t *ssa.Block) int {
		i := cursor[t]
		cursor[t] = i + 1
		return i
	}
	for _, b := range f.Blocks {
		switch b.Term.Op {
		case ir.TermJmp:
			st.jmpEdge[b.ID] = take(b.Term.Then)
		case ir.TermBr:
			st.thenEdge[b.ID] = take(b.Term.Then)
			st.elseEdge[b.ID] = take(b.Term.Else)
		case ir.TermSwitch:
			es := make([]int, 0, len(b.Term.Targets)+1)
			for _, t := range b.Term.Targets {
				es = append(es, take(t))
			}
			es = append(es, take(b.Term.Else))
			st.swEdge[b.ID] = es
		}
	}
	// Def sites and use lists.
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			st.defIn[v.ID] = b
			for _, a := range v.Args {
				st.users[a.ID] = append(st.users[a.ID], v)
			}
		}
		for _, v := range b.Code {
			st.defIn[v.ID] = b
			for _, a := range v.Args {
				st.users[a.ID] = append(st.users[a.ID], v)
			}
		}
		if b.Term.Cond != nil {
			st.conds[b.Term.Cond.ID] = append(st.conds[b.Term.Cond.ID], b)
		}
	}

	st.markBlock(f.Entry)
	for len(st.flowWork) > 0 || len(st.ssaWork) > 0 {
		for len(st.flowWork) > 0 {
			e := st.flowWork[len(st.flowWork)-1]
			st.flowWork = st.flowWork[:len(st.flowWork)-1]
			if st.edgeExec[e] {
				continue
			}
			st.edgeExec[e] = true
			// New incoming edge: phis see a new operand either way; the
			// block body runs once on first execution.
			first := !st.blockExec[e.to.ID]
			if first {
				st.markBlock(e.to)
			} else {
				for _, v := range e.to.Phis {
					st.evalValue(v)
				}
			}
		}
		for len(st.ssaWork) > 0 {
			v := st.ssaWork[len(st.ssaWork)-1]
			st.ssaWork = st.ssaWork[:len(st.ssaWork)-1]
			if b := st.defIn[v.ID]; b != nil && st.blockExec[b.ID] {
				st.evalValue(v)
			}
		}
	}

	// Verdicts. SwTest branches share their governing switch's site and
	// carry no direction fact of their own; switch sites get at most the
	// unreachability verdict (a multi-way dispatch has no taken direction
	// the binary fact lattice could pin).
	for _, b := range f.Blocks {
		if b.Term.Src == nil || b.Term.Src.SwTest {
			continue
		}
		site := b.Term.Src.Site
		if int(site) >= len(res.Facts) {
			continue
		}
		switch b.Term.Op {
		case ir.TermSwitch:
			if !st.blockExec[b.ID] {
				res.Facts[site] = FactUnreachable
			}
		case ir.TermBr:
			if !st.blockExec[b.ID] {
				res.Facts[site] = FactUnreachable
				continue
			}
			thenOK := st.edgeExec[edgeRef{b.Term.Then, st.thenEdge[b.ID]}]
			elseOK := st.edgeExec[edgeRef{b.Term.Else, st.elseEdge[b.ID]}]
			switch {
			case thenOK && !elseOK:
				res.Facts[site] = FactAlwaysTaken
			case elseOK && !thenOK:
				res.Facts[site] = FactNeverTaken
			}
		}
	}
}

// markBlock makes a block executable and evaluates its body and terminator.
func (st *sccpState) markBlock(b *ssa.Block) {
	st.blockExec[b.ID] = true
	for _, v := range b.Phis {
		st.evalValue(v)
	}
	for _, v := range b.Code {
		st.evalValue(v)
	}
	st.evalTerm(b)
}

// setVal lowers a value in the lattice, widening runaway intervals, and
// queues its consumers when it moved.
func (st *sccpState) setVal(v *ssa.Value, nv lval) {
	old := st.val[v.ID]
	nv = join(old, nv) // force a descending chain
	if nv.eq(old) {
		return
	}
	if nv.tag == lIRange {
		st.hits[v.ID]++
		if st.hits[v.ID] > widenAfter && old.tag == lIRange {
			if nv.lo < old.lo {
				nv.lo = math.MinInt64
			}
			if nv.hi > old.hi {
				nv.hi = math.MaxInt64
			}
		}
	}
	st.val[v.ID] = nv
	st.ssaWork = append(st.ssaWork, st.users[v.ID]...)
	for _, cb := range st.conds[v.ID] {
		if st.blockExec[cb.ID] {
			st.evalTerm(cb)
		}
	}
}

// evalValue recomputes one value's lattice element.
func (st *sccpState) evalValue(v *ssa.Value) {
	switch v.Op {
	case ssa.OpPhi:
		b := st.defIn[v.ID]
		acc := top
		for i, a := range v.Args {
			if i < len(b.Preds) && st.edgeExec[edgeRef{b, i}] {
				acc = join(acc, st.val[a.ID])
			}
		}
		st.setVal(v, acc)
		return
	case ssa.OpCopy:
		st.setVal(v, st.val[v.Args[0].ID])
		return
	case ssa.OpParam:
		// Intraprocedural: parameters carry arbitrary caller values.
		st.setVal(v, bot)
		return
	}
	op := v.Op.IR()
	switch op {
	case ir.OpConstI:
		st.setVal(v, iconst(v.Imm))
		return
	case ir.OpConstF:
		st.setVal(v, fconst(v.Imm))
		return
	case ir.OpMov:
		st.setVal(v, st.val[v.Args[0].ID])
		return
	}
	if !op.HasDst() {
		return
	}
	// Any top operand: wait for more information (standard optimistic SCCP).
	args := make([]lval, len(v.Args))
	for i, a := range v.Args {
		args[i] = st.val[a.ID]
		if args[i].tag == lTop {
			return
		}
	}
	st.setVal(v, transfer(op, args))
}

// evalTerm marks the executable outgoing edges of b given the current
// condition value.
func (st *sccpState) evalTerm(b *ssa.Block) {
	switch b.Term.Op {
	case ir.TermJmp:
		st.pushEdge(edgeRef{b.Term.Then, st.jmpEdge[b.ID]})
	case ir.TermBr:
		cond := st.val[b.Term.Cond.ID]
		switch {
		case cond.tag == lTop:
			// No executable definition yet; revisited when it lowers.
		case cond.tag == lIRange && !cond.contains0():
			st.pushEdge(edgeRef{b.Term.Then, st.thenEdge[b.ID]})
		case cond.tag == lIRange && cond.isConst(): // the constant is 0
			st.pushEdge(edgeRef{b.Term.Else, st.elseEdge[b.ID]})
		default:
			// Undecided ranges, floats (whose bit patterns the branch
			// truthiness test inspects), and bottom: both arms.
			st.pushEdge(edgeRef{b.Term.Then, st.thenEdge[b.ID]})
			st.pushEdge(edgeRef{b.Term.Else, st.elseEdge[b.ID]})
		}
	case ir.TermSwitch:
		cond := st.val[b.Term.Cond.ID]
		es := st.swEdge[b.ID]
		n := len(b.Term.Targets)
		switch {
		case cond.tag == lTop:
			// No executable definition yet; revisited when it lowers.
		case cond.tag == lIRange:
			// Only case edges whose label intersects the range can run;
			// the default needs a range value outside [0, n).
			for i, t := range b.Term.Targets {
				if cond.lo <= int64(i) && int64(i) <= cond.hi {
					st.pushEdge(edgeRef{t, es[i]})
				}
			}
			if cond.lo < 0 || cond.hi >= int64(n) {
				st.pushEdge(edgeRef{b.Term.Else, es[n]})
			}
		default:
			// Floats and bottom: every outcome is possible.
			for i, t := range b.Term.Targets {
				st.pushEdge(edgeRef{t, es[i]})
			}
			st.pushEdge(edgeRef{b.Term.Else, es[n]})
		}
	}
}

func (st *sccpState) pushEdge(e edgeRef) {
	if !st.edgeExec[e] {
		st.flowWork = append(st.flowWork, e)
	}
}

// --- transfer functions --------------------------------------------------

// transfer evaluates one operation over interval operands, mirroring the
// interpreter's exact semantics. Anything that could wrap, trap, or touch
// state outside the SSA value graph is bottom.
func transfer(op ir.Op, args []lval) lval {
	// Bottom operands: a handful of ops still bound their result.
	for _, a := range args {
		if a.tag == lBot || a.tag == lFConst {
			return transferWeak(op, args)
		}
	}
	switch op {
	case ir.OpAddI:
		lo, ok1 := addOv(args[0].lo, args[1].lo)
		hi, ok2 := addOv(args[0].hi, args[1].hi)
		if !ok1 || !ok2 {
			return fullRange()
		}
		return irange(lo, hi)
	case ir.OpSubI:
		lo, ok1 := subOv(args[0].lo, args[1].hi)
		hi, ok2 := subOv(args[0].hi, args[1].lo)
		if !ok1 || !ok2 {
			return fullRange()
		}
		return irange(lo, hi)
	case ir.OpMulI:
		var vals [4]int64
		idx := 0
		for _, a := range [2]int64{args[0].lo, args[0].hi} {
			for _, b := range [2]int64{args[1].lo, args[1].hi} {
				p, ok := mulOv(a, b)
				if !ok {
					return fullRange()
				}
				vals[idx] = p
				idx++
			}
		}
		return corners(vals[:]...)
	case ir.OpDivI:
		return divRange(args[0], args[1])
	case ir.OpModI:
		return modRange(args[0], args[1])
	case ir.OpNegI:
		if args[0].lo == math.MinInt64 {
			return fullRange()
		}
		return irange(-args[0].hi, -args[0].lo)
	case ir.OpNotI:
		switch {
		case !args[0].contains0():
			return iconst(0)
		case args[0].isConst():
			return iconst(1)
		}
		return irange(0, 1)
	case ir.OpAbsI:
		return absRange(args[0])
	case ir.OpMinI:
		return irange(min64(args[0].lo, args[1].lo), min64(args[0].hi, args[1].hi))
	case ir.OpMaxI:
		return irange(max64(args[0].lo, args[1].lo), max64(args[0].hi, args[1].hi))
	case ir.OpAndI, ir.OpOrI, ir.OpXorI:
		return bitRange(op, args[0], args[1])
	case ir.OpShlI:
		if args[1].isConst() {
			return shlRange(args[0], uint64(args[1].lo)&63)
		}
		return fullRange()
	case ir.OpShrI:
		if args[1].isConst() {
			s := uint64(args[1].lo) & 63
			// Arithmetic shift is monotone in the shifted value.
			return irange(args[0].lo>>s, args[0].hi>>s)
		}
		return fullRange()
	case ir.OpEqI, ir.OpNeI, ir.OpLtI, ir.OpLeI, ir.OpGtI, ir.OpGeI:
		return cmpRange(op, args[0], args[1])
	case ir.OpItoF:
		if args[0].isConst() {
			return fconst(int64(math.Float64bits(float64(args[0].lo))))
		}
		return bot
	}
	return transferWeak(op, args)
}

// transferWeak handles operations whose operands include bottom or float
// values: only shapes with a result bound independent of the weak operand,
// plus fully-constant float compares, produce information.
func transferWeak(op ir.Op, args []lval) lval {
	switch op {
	case ir.OpEqI, ir.OpNeI, ir.OpLtI, ir.OpLeI, ir.OpGtI, ir.OpGeI,
		ir.OpEqF, ir.OpNeF, ir.OpLtF, ir.OpLeF, ir.OpGtF, ir.OpGeF:
		if op == ir.OpEqF || op == ir.OpNeF || op == ir.OpLtF ||
			op == ir.OpLeF || op == ir.OpGtF || op == ir.OpGeF {
			if len(args) == 2 && args[0].tag == lFConst && args[1].tag == lFConst {
				return fcmp(op, args[0].lo, args[1].lo)
			}
		}
		return irange(0, 1)
	case ir.OpNotI:
		return irange(0, 1)
	}
	return bot
}

// fcmp folds a float comparison of two constants with IEEE-754 semantics.
func fcmp(op ir.Op, abits, bbits int64) lval {
	a, b := math.Float64frombits(uint64(abits)), math.Float64frombits(uint64(bbits))
	var r bool
	switch op {
	case ir.OpEqF:
		r = a == b
	case ir.OpNeF:
		r = a != b
	case ir.OpLtF:
		r = a < b
	case ir.OpLeF:
		r = a <= b
	case ir.OpGtF:
		r = a > b
	case ir.OpGeF:
		r = a >= b
	}
	if r {
		return iconst(1)
	}
	return iconst(0)
}

// divRange bounds integer division; only a constant non-zero divisor is
// modelled (a divisor range containing zero may trap, and the MinInt64/-1
// corner follows the interpreter's saturation).
func divRange(a, b lval) lval {
	if !b.isConst() || b.lo == 0 {
		return fullRange()
	}
	c := b.lo
	if c == -1 && a.lo == math.MinInt64 {
		return fullRange()
	}
	return corners(a.lo/c, a.hi/c)
}

// modRange bounds integer remainder by a constant non-zero divisor: the
// result's sign follows the dividend and its magnitude stays below |c|.
func modRange(a, b lval) lval {
	if !b.isConst() || b.lo == 0 {
		return fullRange()
	}
	c := b.lo
	if c == -1 {
		return iconst(0) // interpreter: x % -1 == 0, including MinInt64
	}
	if c == math.MinInt64 {
		return fullRange()
	}
	m := c
	if m < 0 {
		m = -m
	}
	lo, hi := -(m - 1), m-1
	if a.lo >= 0 {
		lo = 0
	}
	if a.hi <= 0 {
		hi = 0
	}
	return irange(lo, hi)
}

func absRange(a lval) lval {
	if a.lo == math.MinInt64 {
		// The interpreter's abs(MinInt64) stays MinInt64.
		return fullRange()
	}
	switch {
	case a.lo >= 0:
		return a
	case a.hi <= 0:
		return irange(-a.hi, -a.lo)
	}
	return irange(0, max64(-a.lo, a.hi))
}

// bitRange bounds bitwise operations for non-negative operands: results
// stay under the next power of two covering both inputs (and under either
// input for AND). Negative operands collapse to the full range.
func bitRange(op ir.Op, a, b lval) lval {
	if a.lo < 0 || b.lo < 0 {
		return fullRange()
	}
	switch op {
	case ir.OpAndI:
		return irange(0, min64(a.hi, b.hi))
	case ir.OpOrI, ir.OpXorI:
		n := bits.Len64(uint64(a.hi) | uint64(b.hi))
		if n >= 63 {
			return irange(0, math.MaxInt64)
		}
		return irange(0, int64(1)<<n-1)
	}
	return fullRange()
}

// shlRange bounds a left shift by a constant amount for non-negative values
// that provably cannot shift into or past the sign bit.
func shlRange(a lval, s uint64) lval {
	if a.lo < 0 || s >= 63 {
		return fullRange()
	}
	if a.hi > 0 && bits.Len64(uint64(a.hi))+int(s) > 63 {
		return fullRange()
	}
	return irange(a.lo<<s, a.hi<<s)
}

// cmpRange evaluates an integer comparison over ranges, deciding it when
// the ranges are ordered or disjoint.
func cmpRange(op ir.Op, a, b lval) lval {
	decided := func(v bool) lval {
		if v {
			return iconst(1)
		}
		return iconst(0)
	}
	switch op {
	case ir.OpEqI:
		if a.isConst() && b.isConst() {
			return decided(a.lo == b.lo)
		}
		if a.lo > b.hi || b.lo > a.hi {
			return decided(false)
		}
	case ir.OpNeI:
		if a.isConst() && b.isConst() {
			return decided(a.lo != b.lo)
		}
		if a.lo > b.hi || b.lo > a.hi {
			return decided(true)
		}
	case ir.OpLtI:
		if a.hi < b.lo {
			return decided(true)
		}
		if a.lo >= b.hi {
			return decided(false)
		}
	case ir.OpLeI:
		if a.hi <= b.lo {
			return decided(true)
		}
		if a.lo > b.hi {
			return decided(false)
		}
	case ir.OpGtI:
		if a.lo > b.hi {
			return decided(true)
		}
		if a.hi <= b.lo {
			return decided(false)
		}
	case ir.OpGeI:
		if a.lo >= b.hi {
			return decided(true)
		}
		if a.hi < b.lo {
			return decided(false)
		}
	}
	return irange(0, 1)
}
