// Package analysis is a pass-manager framework over the ir/cfg packages, in
// the spirit of translation validation (Necula, PLDI 2000): instead of
// trusting the replicator, each transformed program is checked against its
// source by static passes that emit structured diagnostics.
//
// The headline pass is Equivalence, which uses the copy provenance recorded
// by internal/replicate to check a lock-step simulation between the original
// program and its replicated form: every copy's instruction body matches its
// origin, every successor edge lands on a copy of the correct original
// successor, and every static prediction equals the majority direction of
// the machine state that governs that copy. Supporting passes lint the CFG,
// check state-machine well-formedness, and cross-check profile tables.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

// Severity ranks a diagnostic. Errors mean the checked property is violated;
// warnings flag suspicious but not incorrect shapes.
type Severity uint8

const (
	// Warning flags code that is legal but probably unintended.
	Warning Severity = iota
	// Error means a checked invariant is violated.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Pos locates a diagnostic inside a program. Block and Instr are indices
// into the named function; -1 means "not applicable" (Instr == -1 points at
// the block's terminator or the block as a whole; Block == -1 at the
// function or program).
type Pos struct {
	Func  string
	Block int
	Instr int
}

func (p Pos) String() string {
	switch {
	case p.Func == "":
		return "program"
	case p.Block < 0:
		return p.Func
	case p.Instr < 0:
		return fmt.Sprintf("%s/b%d", p.Func, p.Block)
	default:
		return fmt.Sprintf("%s/b%d[%d]", p.Func, p.Block, p.Instr)
	}
}

// BlockPos builds a Pos for a block of a function.
func BlockPos(f *ir.Func, b *ir.Block) Pos {
	return Pos{Func: f.Name, Block: b.ID, Instr: -1}
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass string
	Sev  Severity
	Pos  Pos
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Sev, d.Pass, d.Pos, d.Msg)
}

// Pass is one analyzer. Run inspects the Context's program(s) and reports
// findings through Context.Errorf/Warnf.
type Pass interface {
	Name() string
	Run(c *Context)
}

// Context carries everything passes need: the program under analysis, the
// optional original program plus provenance (for Equivalence), the machine
// choices and profile predictions that were applied, the collected profile
// (for ProfileConsistency), and per-function CFG/loop caches shared by all
// passes in one Manager run.
type Context struct {
	// Prog is the program under analysis (the replicated program for
	// Equivalence, any program for lint passes). Required.
	Prog *ir.Program
	// Orig is the pre-transform snapshot Equivalence checks against.
	Orig *ir.Program
	// Prov is the copy provenance recorded during replication.
	Prov *Provenance
	// Choices are the machine selections that were applied.
	Choices []statemachine.Choice
	// Preds are the per-Orig-site profile predictions passed to Annotate.
	Preds []ir.Prediction
	// Prof is the collected profile, for ProfileConsistency.
	Prof *profile.Profile

	graphs map[*ir.Func]graphEntry
	loops  map[*ir.Func]loopEntry
	pass   string
	diags  []Diagnostic
}

// graphEntry/loopEntry pair a cached structure with the structural
// signature of the function at build time, so a mutation between lookups
// invalidates the cache instead of serving stale CFGs.
type graphEntry struct {
	g   *cfg.Graph
	sig uint64
}

type loopEntry struct {
	lf  *cfg.LoopForest
	sig uint64
}

// funcSig hashes the structure the cfg package derives from a function:
// block count and, per block, identity, instruction count (Loop.NumInstrs
// depends on it), terminator opcode, and successor IDs. FNV-1a over those
// words; any mutation that changes the CFG or loop forest changes the
// signature.
func funcSig(f *ir.Func) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		mix(uint64(b.ID))
		mix(uint64(len(b.Instrs)))
		mix(uint64(b.Term.Op))
		if b.Term.Then != nil {
			mix(uint64(b.Term.Then.ID) + 1)
		}
		if (b.Term.Op == ir.TermBr || b.Term.Op == ir.TermSwitch) && b.Term.Else != nil {
			mix(uint64(b.Term.Else.ID) + 1)
		}
		for _, t := range b.Term.Targets {
			mix(uint64(t.ID) + 1)
		}
	}
	return h
}

// NewContext returns a Context for analysing prog.
func NewContext(prog *ir.Program) *Context {
	return &Context{
		Prog:   prog,
		graphs: make(map[*ir.Func]graphEntry),
		loops:  make(map[*ir.Func]loopEntry),
	}
}

// Graph returns the (cached) CFG of f. The cache is keyed on the function's
// structural signature: a mutation after a previous lookup rebuilds rather
// than serving the stale graph.
func (c *Context) Graph(f *ir.Func) *cfg.Graph {
	if c.graphs == nil {
		c.graphs = make(map[*ir.Func]graphEntry)
	}
	sig := funcSig(f)
	if e, ok := c.graphs[f]; ok && e.sig == sig {
		return e.g
	}
	g := cfg.Build(f)
	c.graphs[f] = graphEntry{g: g, sig: sig}
	return g
}

// Loops returns the (cached) loop forest of f, invalidated together with
// the CFG it was derived from.
func (c *Context) Loops(f *ir.Func) *cfg.LoopForest {
	if c.loops == nil {
		c.loops = make(map[*ir.Func]loopEntry)
	}
	sig := funcSig(f)
	if e, ok := c.loops[f]; ok && e.sig == sig {
		return e.lf
	}
	lf := cfg.FindLoops(c.Graph(f))
	c.loops[f] = loopEntry{lf: lf, sig: sig}
	return lf
}

// Errorf records an Error diagnostic at pos for the running pass.
func (c *Context) Errorf(pos Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Pass: c.pass, Sev: Error, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a Warning diagnostic at pos for the running pass.
func (c *Context) Warnf(pos Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Pass: c.pass, Sev: Warning, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Manager runs a fixed sequence of passes over one Context.
type Manager struct {
	Passes []Pass
}

// Run executes the passes in order and returns the accumulated diagnostics,
// sorted errors-first then by position for stable output.
func (m *Manager) Run(c *Context) []Diagnostic {
	for _, p := range m.Passes {
		c.pass = p.Name()
		p.Run(c)
	}
	c.pass = ""
	diags := c.diags
	c.diags = nil
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Sev != diags[j].Sev {
			return diags[i].Sev > diags[j].Sev // errors first
		}
		if diags[i].Pos.Func != diags[j].Pos.Func {
			return diags[i].Pos.Func < diags[j].Pos.Func
		}
		if diags[i].Pos.Block != diags[j].Pos.Block {
			return diags[i].Pos.Block < diags[j].Pos.Block
		}
		return diags[i].Pos.Instr < diags[j].Pos.Instr
	})
	return diags
}

// HasErrors reports whether any diagnostic is an Error.
func HasErrors(diags []Diagnostic) bool {
	return FirstError(diags) != nil
}

// FirstError returns the first Error diagnostic, or nil.
func FirstError(diags []Diagnostic) *Diagnostic {
	for i := range diags {
		if diags[i].Sev == Error {
			return &diags[i]
		}
	}
	return nil
}
