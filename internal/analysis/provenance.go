package analysis

import (
	"repro/internal/ir"
	"repro/internal/statemachine"
)

// BlockID names a block of the pre-transform snapshot positionally: Func is
// the function's index in Program.Funcs, Block the block's index in
// Func.Blocks at snapshot time. ir.CloneProgram preserves both orders, so a
// BlockID recorded against the program under transformation indexes the
// snapshot directly.
type BlockID struct {
	Func  int
	Block int
}

// authKind says which mechanism owns a branch copy's static prediction.
type authKind uint8

const (
	// authProfile: the plain profile prediction vector (replicate.Annotate).
	authProfile authKind = iota
	// authMachine: a loop/exit/joint machine state governs the branch.
	authMachine
	// authPath: a correlated path machine copy or catch-all.
	authPath
)

// predAuth records the prediction authority of one branch copy. The zero
// value (and a missing map entry) means profile authority.
type predAuth struct {
	kind  authKind
	app   *MachineApp
	papp  *PathApp
	state int // machine state, or path state index (-1 = catch-all)
	bi    int // branch index within a joint machine (0 for single machines)
}

// Machine is the verifier's view of a prediction state machine: a total
// deterministic automaton over (state, branch index, outcome) with a
// per-(state, branch) prediction. Next reports false when the transition is
// undefined (an ill-formed machine), which the well-formedness pass turns
// into a diagnostic instead of a crash.
type Machine interface {
	NumStates() int
	InitState() int
	Predict(state, branch int) bool
	Next(state, branch int, taken bool) (int, bool)
}

// LoopMachineModel adapts a statemachine.LoopMachine (single branch, so the
// branch index is ignored).
type LoopMachineModel struct{ M *statemachine.LoopMachine }

func (m LoopMachineModel) NumStates() int { return m.M.NumStates() }
func (m LoopMachineModel) InitState() int { return m.M.Init }
func (m LoopMachineModel) Predict(state, _ int) bool {
	if state < 0 || state >= len(m.M.PredTaken) {
		return false
	}
	return m.M.PredTaken[state]
}
func (m LoopMachineModel) Next(state, _ int, taken bool) (int, bool) {
	if state < 0 || state >= m.M.NumStates() {
		return -1, false
	}
	return m.M.NextIndex(state, taken)
}

// ExitMachineModel adapts a statemachine.ExitMachine.
type ExitMachineModel struct{ M *statemachine.ExitMachine }

func (m ExitMachineModel) NumStates() int { return m.M.N }
func (m ExitMachineModel) InitState() int { return 0 }
func (m ExitMachineModel) Predict(state, _ int) bool {
	if state < 0 || state >= len(m.M.PredTaken) {
		return false
	}
	return m.M.PredTaken[state]
}
func (m ExitMachineModel) Next(state, _ int, taken bool) (int, bool) {
	if state < 0 || state >= m.M.N {
		return -1, false
	}
	return m.M.Next(state, taken), true
}

// JointMachineModel adapts a statemachine.JointMachine (§6 product machine).
type JointMachineModel struct{ M *statemachine.JointMachine }

func (m JointMachineModel) NumStates() int { return m.M.States }
func (m JointMachineModel) InitState() int { return m.M.Init }
func (m JointMachineModel) Predict(state, branch int) bool {
	if state < 0 || state >= m.M.States || branch < 0 || branch >= len(m.M.Branches) {
		return false
	}
	return m.M.Predict(state, branch)
}
func (m JointMachineModel) Next(state, branch int, taken bool) (int, bool) {
	if state < 0 || state >= m.M.States || branch < 0 || branch >= len(m.M.Branches) {
		return -1, false
	}
	n := m.M.Next(state, branch, taken)
	if n < 0 || n >= m.M.States {
		return -1, false
	}
	return n, true
}

// Provenance records, while the replicator runs, where every block of the
// transformed program came from and which machine state governs each branch
// copy's static prediction. The Equivalence pass replays it as a lock-step
// simulation relation against the pre-transform snapshot.
//
// All methods are safe on a nil receiver (they do nothing and return zero
// values), so the replicator threads one pointer through unconditionally and
// only pays for bookkeeping when verification is requested.
type Provenance struct {
	origin map[*ir.Block]BlockID
	auth   map[*ir.Block]predAuth
	apps   []*MachineApp
	paths  []*PathApp
}

// NewProvenance snapshots prog's current block positions as the identity
// origins. Call it before any transformation (and before Annotate).
func NewProvenance(prog *ir.Program) *Provenance {
	p := &Provenance{
		origin: make(map[*ir.Block]BlockID),
		auth:   make(map[*ir.Block]predAuth),
	}
	for fi, f := range prog.Funcs {
		for bi, b := range f.Blocks {
			p.origin[b] = BlockID{Func: fi, Block: bi}
		}
	}
	return p
}

// Origin returns the snapshot position block b descends from.
func (p *Provenance) Origin(b *ir.Block) (BlockID, bool) {
	if p == nil {
		return BlockID{}, false
	}
	id, ok := p.origin[b]
	return id, ok
}

// RecordClones registers a CloneBlocks original→copy map: each copy inherits
// its source's origin, prediction authority, and per-application machine
// states.
func (p *Provenance) RecordClones(m map[*ir.Block]*ir.Block) {
	if p == nil {
		return
	}
	for src, cp := range m {
		if id, ok := p.origin[src]; ok {
			p.origin[cp] = id
		}
		if a, ok := p.auth[src]; ok {
			p.auth[cp] = a
		}
		for _, app := range p.apps {
			if s, ok := app.stateOf[src]; ok {
				app.stateOf[cp] = s
			}
		}
	}
}

// NewMachineApp opens the record of one machine application (one
// replicateLoop / replicateLoopJoint call).
func (p *Provenance) NewMachineApp(m Machine) *MachineApp {
	if p == nil {
		return nil
	}
	app := &MachineApp{prov: p, M: m, stateOf: make(map[*ir.Block]int)}
	p.apps = append(p.apps, app)
	return app
}

// NewPathApp opens the record of one correlated-machine application (one
// replicatePath call).
func (p *Provenance) NewPathApp(m *statemachine.PathMachine) *PathApp {
	if p == nil {
		return nil
	}
	papp := &PathApp{prov: p, m: m}
	p.paths = append(p.paths, papp)
	return papp
}

// Apps returns every machine application recorded so far.
func (p *Provenance) Apps() []*MachineApp {
	if p == nil {
		return nil
	}
	return p.apps
}

// PathApps returns every correlated-machine application recorded so far.
func (p *Provenance) PathApps() []*PathApp {
	if p == nil {
		return nil
	}
	return p.paths
}

func (p *Provenance) authOf(b *ir.Block) predAuth {
	if p == nil {
		return predAuth{}
	}
	return p.auth[b]
}

// MachineApp is the record of one loop/exit/joint machine application: the
// machine and the state each created block copy belongs to.
type MachineApp struct {
	prov    *Provenance
	M       Machine
	stateOf map[*ir.Block]int
}

// SetState assigns block copy b to machine state s.
func (a *MachineApp) SetState(b *ir.Block, s int) {
	if a == nil {
		return
	}
	a.stateOf[b] = s
}

// SetBranch assigns the governed branch copy b to state s and makes this
// application the authority for b's static prediction, as branch index bi of
// the machine.
func (a *MachineApp) SetBranch(b *ir.Block, s, bi int) {
	if a == nil {
		return
	}
	a.stateOf[b] = s
	a.prov.auth[b] = predAuth{kind: authMachine, app: a, state: s, bi: bi}
}

// StateOf returns the machine state of block b under this application.
func (a *MachineApp) StateOf(b *ir.Block) (int, bool) {
	if a == nil {
		return 0, false
	}
	s, ok := a.stateOf[b]
	return s, ok
}

// PathApp is the record of one correlated-machine application: which blocks
// are state copies, which is the catch-all, and which path states ended up
// routed (unrouted states fold their counts into the catch-all).
type PathApp struct {
	prov   *Provenance
	m      *statemachine.PathMachine
	routed []bool
}

// SetStateCopy makes this application the prediction authority of the
// tail-duplicated copy c for path state index state.
func (a *PathApp) SetStateCopy(c *ir.Block, state int) {
	if a == nil {
		return
	}
	a.prov.auth[c] = predAuth{kind: authPath, papp: a, state: state}
}

// SetCatchAll makes this application the prediction authority of the
// catch-all block b.
func (a *PathApp) SetCatchAll(b *ir.Block) {
	if a == nil {
		return
	}
	a.prov.auth[b] = predAuth{kind: authPath, papp: a, state: -1}
}

// Finish records which path states were actually routed to their own copy.
func (a *PathApp) Finish(stateRouted []bool) {
	if a == nil {
		return
	}
	a.routed = append([]bool(nil), stateRouted...)
}

// expectedCatch recomputes the catch-all's correct prediction: the machine's
// catch-all counts merged with the counts of every unrouted path state
// (mirroring the fold the replicator performs). Before Finish (the
// no-routable-states early return) it is the machine's plain catch-all
// prediction.
func (a *PathApp) expectedCatch() bool {
	if a.routed == nil {
		return a.m.CatchPred
	}
	pair := a.m.CatchPair
	for i := range a.m.Paths {
		if i < len(a.routed) && !a.routed[i] {
			pair.Merge(a.m.StatePairs[i])
		}
	}
	return pair.MajorityTaken()
}
