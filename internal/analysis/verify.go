package analysis

import (
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

// Verify runs the replication-equivalence verification suite: the
// Equivalence simulation check of repl against the pre-transform snapshot
// orig (driven by the provenance the replicator recorded), plus machine
// well-formedness. It returns the sorted diagnostics; any Error means the
// transformed program must not be trusted.
func Verify(orig, repl *ir.Program, prov *Provenance, choices []statemachine.Choice, preds []ir.Prediction) []Diagnostic {
	c := NewContext(repl)
	c.Orig = orig
	c.Prov = prov
	c.Choices = choices
	c.Preds = preds
	m := &Manager{Passes: []Pass{Equivalence{}, Machines{}}}
	return m.Run(c)
}

// Lint runs the standalone analysis suite over one program: CFG lint,
// machine well-formedness for the given choices (may be nil), and profile
// consistency (when prof is non-nil). Unlike Verify it needs no transform
// provenance, so it applies to any program — compiled sources as well as
// replicated output.
func Lint(prog *ir.Program, choices []statemachine.Choice, prof *profile.Profile) []Diagnostic {
	c := NewContext(prog)
	c.Choices = choices
	c.Prof = prof
	m := &Manager{Passes: []Pass{CFGLint{}, Machines{}, ProfileConsistency{}}}
	return m.Run(c)
}
