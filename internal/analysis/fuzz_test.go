package analysis_test

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/replicate"
	"repro/internal/statemachine"
)

// FuzzVerify drives the whole pipeline — generate, profile, select, replicate
// — with verification enabled and fails if the verifier ever rejects a
// legitimate transformation (a false positive) or the driver panics. Inputs
// that don't survive the pipeline for unrelated reasons (step limits,
// degenerate programs) are skipped.
func FuzzVerify(f *testing.F) {
	f.Add(int64(0), uint8(2), false)
	f.Add(int64(56), uint8(2), true)
	f.Add(int64(123), uint8(5), false)
	f.Add(int64(7), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, states uint8, joint bool) {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Skip()
		}
		n := prog.NumberBranches(true)
		if n == 0 {
			t.Skip()
		}
		prof := profile.New(n, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 2_000_000
		ref.Hook = prof.Branch
		if _, err := ref.Run(); err != nil {
			t.Skip()
		}
		feats := predict.Analyze(prog)
		choices := statemachine.Select(prof, feats, statemachine.Options{
			MaxStates:  2 + int(states%6),
			MaxPathLen: 1 + int(states%2),
		})
		preds := predict.ProfileStatic(prof.Counts).Preds
		clone := ir.CloneProgram(prog)
		opts := replicate.Options{Verify: true, MaxSizeFactor: 3}
		var st *replicate.Stats
		if joint {
			st, err = replicate.ApplyJoint(clone, choices, preds, opts)
		} else {
			st, err = replicate.ApplyOpts(clone, choices, preds, opts)
		}
		if err != nil {
			if errors.Is(err, replicate.ErrVerify) {
				t.Fatalf("verifier rejected legitimate replication (seed %d states %d joint %v): %v",
					seed, states, joint, err)
			}
			t.Skip()
		}
		if !st.Verified {
			t.Fatalf("Verify requested but Stats.Verified not set (seed %d)", seed)
		}
	})
}
