package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/progen"
)

// FuzzStaticSoundness is the differential soundness check for the static
// prediction engine: over generated programs, every branch SCCP proves
// one-way must agree with a recorded interpreter trace — an always-taken
// site may never be observed not-taken, a dead branch may never be observed
// taken, and an unreachable site may never execute. Heuristic probabilities
// carry no such obligation (they are allowed to be wrong); only the Facts
// are claims.
func FuzzStaticSoundness(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Add(int64(56))
	f.Add(int64(123))
	f.Add(int64(4096))
	f.Add(int64(999983))
	f.Fuzz(func(t *testing.T, seed int64) {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Skip()
		}
		n := prog.NumberBranches(true)
		if n == 0 {
			t.Skip()
		}
		rep, err := analysis.BuildStaticReport(prog)
		if err != nil {
			t.Fatalf("seed %d: static report failed on a valid program: %v", seed, err)
		}
		if len(rep.Sites) != n {
			t.Fatalf("seed %d: %d sites reported, %d numbered", seed, len(rep.Sites), n)
		}
		prof := profile.New(n, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 2_000_000
		ref.Hook = prof.Branch
		if _, err := ref.Run(); err != nil {
			t.Skip() // step limit or runtime trap; no trace to compare against
		}
		for i := range rep.Sites {
			s := &rep.Sites[i]
			switch s.Fact {
			case analysis.FactAlwaysTaken:
				if prof.Counts.NotTaken[i] != 0 {
					t.Fatalf("seed %d site %d (%s): proven always-taken, observed not-taken %d times",
						seed, i, s.Func, prof.Counts.NotTaken[i])
				}
			case analysis.FactNeverTaken:
				if prof.Counts.Taken[i] != 0 {
					t.Fatalf("seed %d site %d (%s): proven dead-branch, observed taken %d times",
						seed, i, s.Func, prof.Counts.Taken[i])
				}
			case analysis.FactUnreachable:
				if prof.Counts.Taken[i]+prof.Counts.NotTaken[i] != 0 {
					t.Fatalf("seed %d site %d (%s): proven unreachable, but executed",
						seed, i, s.Func)
				}
			}
		}
	})
}
