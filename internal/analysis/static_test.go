package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
)

func TestCombineDS(t *testing.T) {
	if got := combineDS(0.5, 0.8); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("0.5 is not the identity: combineDS(0.5, 0.8) = %g", got)
	}
	if a, b := combineDS(0.7, 0.9), combineDS(0.9, 0.7); math.Abs(a-b) > 1e-12 {
		t.Fatalf("not symmetric: %g vs %g", a, b)
	}
	if got := combineDS(0.8, 0.8); got <= 0.8 {
		t.Fatalf("agreeing evidence must reinforce: combineDS(0.8, 0.8) = %g", got)
	}
	if got := combineDS(0.8, 0.2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("balanced disagreement must cancel: combineDS(0.8, 0.2) = %g", got)
	}
	// Associativity, which lets heuristics fire in any order.
	a := combineDS(combineDS(0.6, 0.7), 0.8)
	b := combineDS(0.6, combineDS(0.7, 0.8))
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("not associative: %g vs %g", a, b)
	}
}

const loopSrc = `
var acc int;

func main() int {
    for var i int = 0; i < 100; i = i + 1 {
        if i % 7 == 0 {
            acc = acc + 1;
        }
    }
    print(acc);
    return acc;
}
`

func compileNumbered(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumberBranches(true) == 0 {
		t.Fatal("no branch sites")
	}
	return prog
}

func TestHeuristicSitesLoop(t *testing.T) {
	prog := compileNumbered(t, loopSrc)
	hs := HeuristicSites(NewContext(prog))
	if len(hs) == 0 {
		t.Fatal("no sites")
	}
	// The loop's closing branch must fire a loop heuristic; the equality
	// test inside the loop (no loop heuristic of its own — both arms stay
	// in the loop) must combine its guard/opcode evidence toward not-taken.
	var sawLoop, sawEqGuard bool
	for i := range hs {
		sh := &hs[i]
		if int32(i) != sh.Site {
			t.Fatalf("site %d indexed at %d", sh.Site, i)
		}
		fired := map[Heuristic]bool{}
		for _, h := range sh.Fired {
			fired[h] = true
			if (h == HeurLoopBranch || h == HeurLoopExit) && sh.LoopDepth == 0 {
				t.Fatalf("site %d fires %s outside a loop", sh.Site, h)
			}
		}
		sawLoop = sawLoop || fired[HeurLoopBranch] || fired[HeurLoopExit]
		if fired[HeurGuard] && fired[HeurOpcode] &&
			!fired[HeurLoopBranch] && !fired[HeurLoopExit] && !fired[HeurLoopHeader] {
			sawEqGuard = true
			if sh.Prob >= 0.5 {
				t.Fatalf("equality guard site must predict not-taken, got p=%g (fired %v)", sh.Prob, sh.Fired)
			}
		}
		if got := sh.Confidence(); got < 0 || got > 1 {
			t.Fatalf("confidence %g out of range", got)
		}
	}
	if !sawLoop {
		t.Fatal("no loop heuristic fired on a loop program")
	}
	if !sawEqGuard {
		t.Fatal("guard heuristic did not fire on the equality-to-constant test")
	}
}

const decidedSrc = `
var out int;

func main() int {
    var x int = 10;
    if x > 100 {
        out = 1;
    }
    var s int = 0;
    for var i int = 0; i < 5; i = i + 1 {
        s = s + i;
    }
    if x < 100 {
        s = s + 1;
    }
    print(s);
    return out;
}
`

func TestSCCPDecidesConstantBranches(t *testing.T) {
	prog := compileNumbered(t, decidedSrc)
	res, err := SCCP(prog)
	if err != nil {
		t.Fatal(err)
	}
	var never, always, none int
	for _, f := range res.Facts {
		switch f {
		case FactNeverTaken:
			never++
		case FactAlwaysTaken:
			always++
		case FactNone:
			none++
		}
	}
	if never != 1 {
		t.Fatalf("want exactly one never-taken site (x > 100), got %d: %v", never, res.Facts)
	}
	if always != 1 {
		t.Fatalf("want exactly one always-taken site (x < 100), got %d: %v", always, res.Facts)
	}
	if none == 0 {
		t.Fatalf("the data-dependent loop branch must stay undecided: %v", res.Facts)
	}
}

func TestBuildStaticReportOverridesDecided(t *testing.T) {
	prog := compileNumbered(t, decidedSrc)
	r, err := BuildStaticReport(prog)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decided() != 2 {
		t.Fatalf("Decided() = %d, want 2", r.Decided())
	}
	preds := r.Predictions()
	skip := r.DecidedSites()
	if len(preds) != len(r.Sites) || len(skip) != len(r.Sites) {
		t.Fatal("vector lengths disagree with site count")
	}
	for i := range r.Sites {
		s := &r.Sites[i]
		switch s.Fact {
		case FactAlwaysTaken:
			if s.Prob != 1 || s.Confidence != 1 || preds[i] != ir.PredTaken || !skip[i] {
				t.Fatalf("always-taken site %d not overridden: %+v", i, s)
			}
		case FactNeverTaken:
			if s.Prob != 0 || s.Confidence != 1 || preds[i] != ir.PredNotTaken || !skip[i] {
				t.Fatalf("dead-branch site %d not overridden: %+v", i, s)
			}
		default:
			if skip[i] {
				t.Fatalf("undecided site %d marked decided", i)
			}
		}
	}
	var sb strings.Builder
	FormatSiteTable(&sb, "decided", r)
	if !strings.Contains(sb.String(), "always-taken") || !strings.Contains(sb.String(), "never-taken") {
		t.Fatalf("report table missing facts:\n%s", sb.String())
	}
}

func TestStaticPredictPassDiagnostics(t *testing.T) {
	prog := compileNumbered(t, decidedSrc)
	m := &Manager{Passes: []Pass{StaticPredict{}}}
	diags := m.Run(NewContext(prog))
	var dead, taken int
	for _, d := range diags {
		if d.Sev != Warning {
			t.Fatalf("statically-decided branches must be warnings, got %s", d)
		}
		if strings.Contains(d.Msg, "dead-branch") {
			dead++
		}
		if strings.Contains(d.Msg, "always-taken") {
			taken++
		}
	}
	if dead != 1 || taken != 1 {
		t.Fatalf("want one dead-branch and one always-taken diagnostic, got %d/%d:\n%v", dead, taken, diags)
	}
}

// TestSCCPSoundOnExamples cross-checks every verdict on the bundled example
// programs against an actual interpreter run: a decided branch must never be
// observed going the other way.
func TestSCCPSoundOnExamples(t *testing.T) {
	for _, src := range []string{loopSrc, decidedSrc} {
		prog := compileNumbered(t, src)
		r, err := BuildStaticReport(prog)
		if err != nil {
			t.Fatal(err)
		}
		n := len(r.Sites)
		prof := profile.New(n, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 2_000_000
		ref.Hook = prof.Branch
		if _, err := ref.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range r.Sites {
			switch r.Sites[i].Fact {
			case FactAlwaysTaken:
				if prof.Counts.NotTaken[i] != 0 {
					t.Fatalf("site %d proven always-taken but observed not-taken %d times", i, prof.Counts.NotTaken[i])
				}
			case FactNeverTaken:
				if prof.Counts.Taken[i] != 0 {
					t.Fatalf("site %d proven never-taken but observed taken %d times", i, prof.Counts.Taken[i])
				}
			case FactUnreachable:
				if prof.Counts.Taken[i]+prof.Counts.NotTaken[i] != 0 {
					t.Fatalf("site %d proven unreachable but executed", i)
				}
			}
		}
	}
}

// TestContextCacheInvalidation pins the regression: mutating a function
// after a Graph/Loops lookup must not serve the stale structures.
func TestContextCacheInvalidation(t *testing.T) {
	// b0 br (b1, b2); b1 jmp b2; b2 ret — no loops.
	_, f := mkFunc(t, 3, map[int][]int{0: {1, 2}, 1: {2}})
	c := NewContext(nil)
	g := c.Graph(f)
	if lf := c.Loops(f); lf.InnermostLoop(f.Blocks[0]) != nil {
		t.Fatal("no loop expected before mutation")
	}
	// Redirect b1's jump back to b0: now a natural loop {b0, b1}.
	f.Blocks[1].Term.Then = f.Blocks[0]
	g2 := c.Graph(f)
	if g2 == g {
		t.Fatal("stale Graph served after mutation")
	}
	if !g2.IsBackEdge(f.Blocks[1], f.Blocks[0]) {
		t.Fatal("rebuilt graph misses the new back edge")
	}
	lf2 := c.Loops(f)
	l := lf2.InnermostLoop(f.Blocks[1])
	if l == nil || l.Header != f.Blocks[0] {
		t.Fatalf("rebuilt loop forest misses the new loop: %+v", l)
	}
	// Unchanged function: the cache still serves the same structures.
	if c.Graph(f) != g2 || c.Loops(f) != lf2 {
		t.Fatal("cache rebuilt without a mutation")
	}
}
