package analysis

import (
	"repro/internal/profile"
)

// ProfileConsistency cross-checks the collectors inside one Profile, which
// all observed the same branch event stream: per-site taken/not-taken counts
// must equal the recorded outcome streams, and every history table must have
// recorded exactly the events left after its documented warm-up (K events
// per site for local history, K events per run for global, M per run for
// paths). A violation means a collector dropped or double-counted events and
// every machine built from the profile is suspect.
type ProfileConsistency struct{}

// Name implements Pass.
func (ProfileConsistency) Name() string { return "profile" }

// Run implements Pass. It needs Context.Prof; without it it reports nothing.
func (ProfileConsistency) Run(c *Context) {
	p := c.Prof
	if p == nil {
		return
	}
	var localWant uint64
	for s := int32(0); int(s) < p.NSites; s++ {
		total := p.Counts.Total(s)
		stream := p.Streams.Site(s)
		if uint64(stream.Len()) != total {
			c.Errorf(Pos{}, "site %d: stream recorded %d events, counts recorded %d", s, stream.Len(), total)
			continue
		}
		var taken uint64
		for i := 0; i < stream.Len(); i++ {
			if stream.Get(i) {
				taken++
			}
		}
		if taken != p.Counts.Taken[s] {
			c.Errorf(Pos{}, "site %d: stream has %d taken outcomes, counts have %d", s, taken, p.Counts.Taken[s])
		}
		if total > uint64(p.Local.K) {
			localWant += total - uint64(p.Local.K)
		}
		if got := tableTotal(p.Local.Table(s)); got != maxSub(total, uint64(p.Local.K)) {
			c.Errorf(Pos{}, "site %d: local history table holds %d events, want %d (%d events minus %d warm-up)",
				s, got, maxSub(total, uint64(p.Local.K)), total, p.Local.K)
		}
	}
	if got := p.Local.Recorded(); got != localWant {
		c.Errorf(Pos{}, "local history recorded %d events, per-site warm-up accounting expects %d", got, localWant)
	}
	totalAll := p.Counts.TotalAll()
	if got := p.Global.Recorded(); got != maxSub(totalAll, uint64(p.Global.K)) {
		c.Errorf(Pos{}, "global history recorded %d events, want %d (%d events minus %d warm-up)",
			got, maxSub(totalAll, uint64(p.Global.K)), totalAll, p.Global.K)
	}
	if got := p.Path.Recorded(); got != maxSub(totalAll, uint64(p.Path.M)) {
		c.Errorf(Pos{}, "path history recorded %d events, want %d (%d events minus %d warm-up)",
			got, maxSub(totalAll, uint64(p.Path.M)), totalAll, p.Path.M)
	}
}

func tableTotal(tab []profile.Pair) uint64 {
	var n uint64
	for _, p := range tab {
		n += p.Total()
	}
	return n
}

func maxSub(a, b uint64) uint64 {
	if a <= b {
		return 0
	}
	return a - b
}
