package analysis

import (
	"repro/internal/ir"
)

// Equivalence is the replication-equivalence verifier: a translation
// validation pass that checks the transformed program against its
// pre-transform snapshot using the replicator's copy provenance. The
// provenance induces a candidate simulation relation — each block of the
// transformed program paired with the original block it copies — and the
// pass checks it is a lock-step simulation:
//
//   - shape: same functions (name/arity/frame/return type) and globals;
//   - every block has a recorded origin in the same function, and the entry
//     maps to the entry;
//   - each copy's instruction body is exactly its origin's (CloneBlocks
//     copies verbatim: no register or instruction rewriting is licensed);
//   - terminators match their origin's kind, operands, and branch ancestry
//     (Orig ID), and every successor edge lands on a copy of the correct
//     original successor;
//   - every conditional branch's static prediction equals what its recorded
//     authority dictates: the profile vector, the governing machine state's
//     majority direction, or the path state's (catch-all predictions account
//     for the counts of unrouted path states);
//   - machine state copies transition correctly: an edge leaving a governed
//     branch copy lands in the copy designated by the machine's transition
//     function, and every other edge stays inside its state copy.
//
// Together these imply the transformed program is a control-flow unfolding
// of the original — same behaviour on every input, not just test inputs —
// with exactly the predictions the chosen machines dictate.
type Equivalence struct{}

// Name implements Pass.
func (Equivalence) Name() string { return "equivalence" }

// Run implements Pass. It needs Context.Orig and Context.Prov; without them
// it reports nothing.
func (Equivalence) Run(c *Context) {
	orig, prov := c.Orig, c.Prov
	if orig == nil || prov == nil {
		return
	}
	repl := c.Prog
	if len(repl.Funcs) != len(orig.Funcs) {
		c.Errorf(Pos{}, "function count changed: %d, originally %d", len(repl.Funcs), len(orig.Funcs))
		return
	}
	checkGlobals(c, orig)
	for fi, f := range repl.Funcs {
		of := orig.Funcs[fi]
		checkFuncShape(c, f, of)
		checkBlocks(c, fi, f, of)
	}
	checkTransitions(c)
}

func checkGlobals(c *Context, orig *ir.Program) {
	repl := c.Prog
	if len(repl.Globals) != len(orig.Globals) {
		c.Errorf(Pos{}, "global count changed: %d, originally %d", len(repl.Globals), len(orig.Globals))
		return
	}
	for i, g := range repl.Globals {
		og := orig.Globals[i]
		if g.Name != og.Name || g.Type != og.Type || g.Len != og.Len || g.Array != og.Array {
			c.Errorf(Pos{}, "global %d changed: %s %v len=%d array=%v, originally %s %v len=%d array=%v",
				i, g.Name, g.Type, g.Len, g.Array, og.Name, og.Type, og.Len, og.Array)
			continue
		}
		if len(g.Init) != len(og.Init) {
			c.Errorf(Pos{}, "global %s initialiser length changed", g.Name)
			continue
		}
		for j := range g.Init {
			if g.Init[j] != og.Init[j] {
				c.Errorf(Pos{}, "global %s initialiser element %d changed", g.Name, j)
				break
			}
		}
	}
}

func checkFuncShape(c *Context, f, of *ir.Func) {
	pos := Pos{Func: f.Name, Block: -1, Instr: -1}
	if f.Name != of.Name {
		c.Errorf(pos, "function renamed from %s", of.Name)
	}
	if f.NParams != of.NParams || f.NRegs != of.NRegs || f.RetType != of.RetType {
		c.Errorf(pos, "signature changed: %d params / %d regs / %v, originally %d / %d / %v",
			f.NParams, f.NRegs, f.RetType, of.NParams, of.NRegs, of.RetType)
	}
}

// originBlock resolves b's recorded origin to a block of the snapshot
// function of index fi, reporting an Error and nil when the provenance is
// missing or inconsistent.
func originBlock(c *Context, fi int, f *ir.Func, b *ir.Block, of *ir.Func) *ir.Block {
	id, ok := c.Prov.Origin(b)
	if !ok {
		c.Errorf(BlockPos(f, b), "block %s has no recorded origin", b)
		return nil
	}
	if id.Func != fi {
		c.Errorf(BlockPos(f, b), "block %s originates in function %d, found in function %d", b, id.Func, fi)
		return nil
	}
	if id.Block < 0 || id.Block >= len(of.Blocks) {
		c.Errorf(BlockPos(f, b), "block %s origin index %d out of range (%d original blocks)", b, id.Block, len(of.Blocks))
		return nil
	}
	return of.Blocks[id.Block]
}

func checkBlocks(c *Context, fi int, f, of *ir.Func) {
	for _, b := range f.Blocks {
		ob := originBlock(c, fi, f, b, of)
		if ob == nil {
			continue
		}
		if b == f.Entry && ob != of.Entry {
			c.Errorf(BlockPos(f, b), "entry block is a copy of %s, not of the original entry %s", ob, of.Entry)
		}
		checkBody(c, f, b, ob)
		checkTerm(c, fi, f, b, ob, of)
		if b.Term.Op == ir.TermBr && !b.Term.SwTest {
			checkPrediction(c, f, b, ob)
		}
	}
}

// checkBody requires the copy's instructions to equal its origin's verbatim:
// the replicator only duplicates and rewires, never rewrites code.
func checkBody(c *Context, f *ir.Func, b, ob *ir.Block) {
	if len(b.Instrs) != len(ob.Instrs) {
		c.Errorf(BlockPos(f, b), "copy of %s has %d instructions, original has %d", ob, len(b.Instrs), len(ob.Instrs))
		return
	}
	for i := range b.Instrs {
		in, oin := &b.Instrs[i], &ob.Instrs[i]
		if in.Op != oin.Op || in.Dst != oin.Dst || in.A != oin.A || in.B != oin.B || in.Imm != oin.Imm {
			c.Errorf(Pos{Func: f.Name, Block: b.ID, Instr: i}, "instruction differs from origin %s: %v, originally %v", ob, *in, *oin)
			return
		}
		if len(in.Args) != len(oin.Args) {
			c.Errorf(Pos{Func: f.Name, Block: b.ID, Instr: i}, "call arity differs from origin %s", ob)
			return
		}
		for j := range in.Args {
			if in.Args[j] != oin.Args[j] {
				c.Errorf(Pos{Func: f.Name, Block: b.ID, Instr: i}, "call argument %d differs from origin %s", j, ob)
				return
			}
		}
	}
}

// checkTerm checks the terminator kind and operands against the origin and
// the lock-step successor condition: each successor edge must land on a copy
// of the corresponding original successor.
func checkTerm(c *Context, fi int, f *ir.Func, b, ob *ir.Block, of *ir.Func) {
	t, ot := &b.Term, &ob.Term
	if t.Op != ot.Op {
		c.Errorf(BlockPos(f, b), "terminator %v differs from origin %s's %v", t.Op, ob, ot.Op)
		return
	}
	if t.Cond != ot.Cond || t.A != ot.A || t.HasVal != ot.HasVal {
		c.Errorf(BlockPos(f, b), "terminator operands differ from origin %s", ob)
	}
	if (t.Op == ir.TermBr || t.Op == ir.TermSwitch) && t.Orig != ot.Orig {
		c.Errorf(BlockPos(f, b), "branch ancestry %d differs from origin %s's %d", t.Orig, ob, ot.Orig)
	}
	checkSucc := func(succ *ir.Block, osucc *ir.Block, slot string) {
		id, ok := c.Prov.Origin(succ)
		if !ok {
			c.Errorf(BlockPos(f, b), "%s successor %s has no recorded origin", slot, succ)
			return
		}
		if id.Func != fi || id.Block != osucc.ID {
			c.Errorf(BlockPos(f, b), "%s successor %s is a copy of b%d, want a copy of %s", slot, succ, id.Block, osucc)
		}
	}
	switch t.Op {
	case ir.TermJmp:
		checkSucc(t.Then, ot.Then, "jump")
	case ir.TermBr:
		checkSucc(t.Then, ot.Then, "taken")
		checkSucc(t.Else, ot.Else, "fall-through")
	case ir.TermSwitch:
		if len(t.Targets) != len(ot.Targets) {
			c.Errorf(BlockPos(f, b), "switch has %d case targets, origin %s has %d", len(t.Targets), ob, len(ot.Targets))
			return
		}
		for i := range t.Targets {
			checkSucc(t.Targets[i], ot.Targets[i], "case")
		}
		checkSucc(t.Else, ot.Else, "default")
	}
}

// checkPrediction compares the branch copy's static prediction with what its
// recorded authority dictates.
func checkPrediction(c *Context, f *ir.Func, b, ob *ir.Block) {
	a := c.Prov.authOf(b)
	var want ir.Prediction
	switch a.kind {
	case authProfile:
		// The profile vector (replicate.Annotate), falling back to the
		// origin's own annotation for sites outside the vector.
		want = ob.Term.Pred
		if o := int(b.Term.Orig); c.Preds != nil && o >= 0 && o < len(c.Preds) {
			want = c.Preds[o]
		}
	case authMachine:
		want = predOf(a.app.M.Predict(a.state, a.bi))
	case authPath:
		if a.state < 0 {
			want = predOf(a.papp.expectedCatch())
		} else if a.state < len(a.papp.m.PredTaken) {
			want = predOf(a.papp.m.PredTaken[a.state])
		} else {
			c.Errorf(BlockPos(f, b), "path state %d out of range (%d states)", a.state, len(a.papp.m.PredTaken))
			return
		}
	}
	if b.Term.Pred != want {
		c.Errorf(BlockPos(f, b), "static prediction %v does not match its authority's %v", b.Term.Pred, want)
	}
}

// checkTransitions checks every machine application's state-copy wiring:
// an edge out of the governed branch copy in state s must land in the copy
// designated by the transition function, and every other edge between state
// copies must stay inside its copy. Edges to blocks outside the application
// (loop exits, later clones by other machines) are unconstrained here — the
// successor-origin check above already pins their destination.
//
// A branch governed by a *different* machine application is exempt from the
// stay rule: stacked replication re-replicates branch copies (a later pass
// treats an earlier pass's clones as fresh sites), and the newest
// application's SetBranch takes over both the prediction and the successor
// wiring. The superseded applications' state maps still cover the block, but
// its edges now follow the governing machine's transition function — which
// the governed case below checks — so cross-state edges under the old maps
// are expected, not errors.
func checkTransitions(c *Context) {
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			a := c.Prov.authOf(b)
			for _, app := range c.Prov.Apps() {
				s, ok := app.StateOf(b)
				if !ok {
					continue
				}
				governed := a.kind == authMachine && a.app == app
				if a.kind == authMachine && !governed {
					continue
				}
				check := func(t *ir.Block, taken bool, slot string) {
					st, ok := app.StateOf(t)
					if !ok {
						return
					}
					if governed {
						want, defined := app.M.Next(s, a.bi, taken)
						if !defined {
							c.Errorf(BlockPos(f, b), "machine transition from state %d on %s is undefined", s, slot)
							return
						}
						if st != want {
							c.Errorf(BlockPos(f, b), "%s edge lands in state copy %d, machine transition requires %d", slot, st, want)
						}
					} else if st != s {
						c.Errorf(BlockPos(f, b), "%s edge leaves state copy %d for copy %d without a machine transition", slot, s, st)
					}
				}
				switch b.Term.Op {
				case ir.TermJmp:
					check(b.Term.Then, true, "jump")
				case ir.TermBr:
					check(b.Term.Then, true, "taken")
					check(b.Term.Else, false, "fall-through")
				case ir.TermSwitch:
					// Machines govern two-way branches only, so a switch
					// inside a state copy is never the governed block and
					// every edge must obey the stay rule.
					for _, tb := range b.Term.Targets {
						check(tb, true, "case")
					}
					check(b.Term.Else, false, "default")
				}
			}
		}
	}
}

func predOf(taken bool) ir.Prediction {
	if taken {
		return ir.PredTaken
	}
	return ir.PredNotTaken
}
