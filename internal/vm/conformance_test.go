package vm_test

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/vm"
)

// The conformance suite pins the compiled backend to the interpreter one
// opcode at a time: for every ir.Op it builds a minimal program exercising
// that op and runs it through runBoth, which compares return value, error
// identity, all counters, trace bytes, and block counts. Each value case
// runs twice — once with operands loaded from globals, which the SSA
// pipeline cannot fold, so the bytecode op really executes at run time; and
// once with constant operands, so the folded/immediate encodings take the
// same path. A coverage check at the bottom fails if an ir.Op is added
// without a conformance case.

func fb(f float64) int64 { return int64(math.Float64bits(f)) }

// opProg builds "main: return op(a, b)". With viaGlobals the operands load
// from mutable globals (Init-seeded) so constant folding cannot touch the
// op; otherwise they are constants and the folded/immediate forms compile.
func opProg(t *testing.T, op ir.Op, a, b int64, viaGlobals bool) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	bd := ir.NewBuilder(f)
	var ra, rb ir.Reg
	if viaGlobals {
		for _, g := range []*ir.Global{
			{Name: "ga", Type: ir.TInt, Len: 1, Init: []int64{a}},
			{Name: "gb", Type: ir.TInt, Len: 1, Init: []int64{b}},
		} {
			if err := p.AddGlobal(g); err != nil {
				t.Fatal(err)
			}
		}
		ra, rb = bd.LoadG(p.Global("ga")), bd.LoadG(p.Global("gb"))
	} else {
		ra, rb = bd.ConstI(a), bd.ConstI(b)
	}
	var res ir.Reg
	if op.NumSrc() == 2 {
		res = bd.Binary(op, ra, rb)
	} else {
		res = bd.Unary(op, ra)
	}
	bd.RetVal(res)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.NumberBranches(true)
	return p
}

type opCase struct {
	name string
	op   ir.Op
	a, b int64
	want int64
}

// opCases is the per-opcode value matrix. Every value-producing ir.Op
// appears at least once; edge cases (wrapping division, NaN comparisons,
// shift masking) ride along because they are exactly where a compiled
// backend would drift from the interpreter.
var opCases = []opCase{
	{"mov", ir.OpMov, 42, 0, 42},
	{"addI", ir.OpAddI, 40, 2, 42},
	{"addIWrap", ir.OpAddI, math.MaxInt64, 1, math.MinInt64},
	{"subI", ir.OpSubI, 40, 2, 38},
	{"mulI", ir.OpMulI, -6, 7, -42},
	{"divI", ir.OpDivI, 42, 5, 8},
	{"divITrunc", ir.OpDivI, -7, 2, -3},
	{"divIWrap", ir.OpDivI, math.MinInt64, -1, math.MinInt64},
	{"modI", ir.OpModI, -7, 3, -1},
	{"modINegOne", ir.OpModI, math.MinInt64, -1, 0},
	{"andI", ir.OpAndI, 0b1100, 0b1010, 0b1000},
	{"orI", ir.OpOrI, 0b1100, 0b1010, 0b1110},
	{"xorI", ir.OpXorI, 0b1100, 0b1010, 0b0110},
	{"shlI", ir.OpShlI, 1, 4, 16},
	{"shlIMask", ir.OpShlI, 1, 64, 1},
	{"shrI", ir.OpShrI, -16, 2, -4},
	{"shrIMask", ir.OpShrI, -16, 66, -4},
	{"negI", ir.OpNegI, 7, 0, -7},
	{"notI0", ir.OpNotI, 0, 0, 1},
	{"notI1", ir.OpNotI, 5, 0, 0},
	{"addF", ir.OpAddF, fb(1.5), fb(2.25), fb(3.75)},
	{"subF", ir.OpSubF, fb(5), fb(1.5), fb(3.5)},
	{"mulF", ir.OpMulF, fb(3), fb(0.5), fb(1.5)},
	{"divF", ir.OpDivF, fb(1), fb(4), fb(0.25)},
	{"divFZero", ir.OpDivF, fb(1), fb(0), fb(math.Inf(1))},
	{"negF", ir.OpNegF, fb(2.5), 0, fb(-2.5)},
	{"eqI", ir.OpEqI, 3, 3, 1},
	{"neI", ir.OpNeI, 3, 3, 0},
	{"ltI", ir.OpLtI, -1, 0, 1},
	{"leI", ir.OpLeI, 0, 0, 1},
	{"gtI", ir.OpGtI, 1, 2, 0},
	{"geI", ir.OpGeI, 2, 2, 1},
	{"eqF", ir.OpEqF, fb(1.5), fb(1.5), 1},
	{"neF", ir.OpNeF, fb(1.5), fb(2.5), 1},
	{"ltF", ir.OpLtF, fb(-3), fb(1), 1},
	{"leF", ir.OpLeF, fb(1), fb(1), 1},
	{"gtF", ir.OpGtF, fb(2), fb(1), 1},
	{"geF", ir.OpGeF, fb(0.5), fb(1), 0},
	{"nanEq", ir.OpEqF, fb(math.NaN()), fb(math.NaN()), 0},
	{"nanNe", ir.OpNeF, fb(math.NaN()), fb(math.NaN()), 1},
	{"nanLt", ir.OpLtF, fb(math.NaN()), fb(1), 0},
	{"itof", ir.OpItoF, -9, 0, fb(-9)},
	{"ftoi", ir.OpFtoI, fb(3.99), 0, 3},
	{"ftoiNeg", ir.OpFtoI, fb(-3.99), 0, -3},
	{"sqrtF", ir.OpSqrtF, fb(9), 0, fb(3)},
	{"sqrtFNeg", ir.OpSqrtF, fb(-1), 0, fb(math.Sqrt(-1))},
	{"absI", ir.OpAbsI, -5, 0, 5},
	{"absIPos", ir.OpAbsI, 5, 0, 5},
	{"absF", ir.OpAbsF, fb(-1.25), 0, fb(1.25)},
	{"minI", ir.OpMinI, 3, -2, -2},
	{"maxI", ir.OpMaxI, 3, -2, 3},
	{"minF", ir.OpMinF, fb(1), fb(2), fb(1)},
	{"maxF", ir.OpMaxF, fb(1), fb(2), fb(2)},
}

// TestOpConformance runs every opcode case on both backends, on both the
// runtime (global-operand) and folded (constant-operand) paths, and checks
// the interpreter oracle value so both backends cannot be wrong together.
func TestOpConformance(t *testing.T) {
	for _, c := range opCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, viaGlobals := range []bool{true, false} {
				prog := opProg(t, c.op, c.a, c.b, viaGlobals)
				got, err := interp.New(prog).Run()
				if err != nil {
					t.Fatalf("interp oracle (globals=%v): %v", viaGlobals, err)
				}
				if got != c.want {
					t.Fatalf("%v(%d,%d) = %d, want %d (globals=%v)",
						c.op, c.a, c.b, got, c.want, viaGlobals)
				}
				runBoth(t, prog, 0, 0)
			}
		})
	}
}

// trapCases are the opcode executions that must fail, with identical
// *interp.RuntimeError text on both backends.
var trapCases = []struct {
	name string
	op   ir.Op
	a, b int64
}{
	{"divZero", ir.OpDivI, 42, 0},
	{"modZero", ir.OpModI, 42, 0},
	{"ftoiNaN", ir.OpFtoI, fb(math.NaN()), 0},
	{"ftoiBig", ir.OpFtoI, fb(1e300), 0},
	{"ftoiNegBig", ir.OpFtoI, fb(-1e300), 0},
}

func TestTrapConformance(t *testing.T) {
	for _, c := range trapCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, viaGlobals := range []bool{true, false} {
				prog := opProg(t, c.op, c.a, c.b, viaGlobals)
				if _, err := interp.New(prog).Run(); err == nil {
					t.Fatalf("interp oracle did not trap (globals=%v)", viaGlobals)
				}
				runBoth(t, prog, 0, 0)
			}
		})
	}
}

// TestNopConstConformance covers OpNop, OpConstI, and OpConstF.
func TestNopConstConformance(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	bd := ir.NewBuilder(f)
	f.Entry.Instrs = append(f.Entry.Instrs, ir.Instr{Op: ir.OpNop})
	ci := bd.ConstI(41)
	cf := bd.ConstF(1.0)
	bd.RetVal(bd.Binary(ir.OpAddI, ci, bd.Unary(ir.OpFtoI, cf)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.NumberBranches(true)
	if got, err := interp.New(p).Run(); err != nil || got != 42 {
		t.Fatalf("oracle: %d, %v", got, err)
	}
	runBoth(t, p, 0, 0)
}

// TestGlobalConformance covers OpLoadG/OpStoreG plus the SetGlobal and
// GlobalValue accessors, which the bench and service layers use on both
// backends interchangeably.
func TestGlobalConformance(t *testing.T) {
	p := ir.NewProgram()
	for _, g := range []*ir.Global{
		{Name: "x", Type: ir.TInt, Len: 1, Init: []int64{5}},
		{Name: "y", Type: ir.TInt, Len: 1},
	} {
		if err := p.AddGlobal(g); err != nil {
			t.Fatal(err)
		}
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	bd := ir.NewBuilder(f)
	x := bd.LoadG(p.Global("x"))
	bd.StoreG(p.Global("y"), bd.Binary(ir.OpMulI, x, x))
	bd.RetVal(bd.LoadG(p.Global("y")))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.NumberBranches(true)
	runBoth(t, p, 0, 0)

	im := interp.New(p)
	if err := im.SetGlobal("x", 7); err != nil {
		t.Fatal(err)
	}
	iret, err := im.Run()
	if err != nil {
		t.Fatal(err)
	}
	vp, err := vm.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	vmach := vp.NewMachine()
	if err := vmach.SetGlobal("x", 7); err != nil {
		t.Fatal(err)
	}
	vret, err := vmach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if iret != 49 || vret != 49 {
		t.Fatalf("SetGlobal runs: interp=%d vm=%d, want 49", iret, vret)
	}
	ig, ierr := im.GlobalValue("y")
	vg, verr := vmach.GlobalValue("y")
	if ierr != nil || verr != nil || ig != vg || ig != 49 {
		t.Fatalf("GlobalValue: interp=%d,%v vm=%d,%v", ig, ierr, vg, verr)
	}
}

// TestElemConformance covers OpLoadElem/OpStoreElem with runtime indices
// (a real loop, so the element ops execute with values no optimizer can
// predict) and the out-of-bounds traps on both sides of the range.
func TestElemConformance(t *testing.T) {
	runBoth(t, compileSrc(t, `
var a [8]int;

func main() int {
    for var i int = 0; i < 8; i = i + 1 {
        a[i] = i * 3;
    }
    var s int = 0;
    for var i int = 0; i < 8; i = i + 1 {
        s = s + a[i];
    }
    return s;
}`), 0, 0)

	for name, idx := range map[string]int64{"neg": -1, "past": 8} {
		idx := idx
		t.Run("load-"+name, func(t *testing.T) {
			runBoth(t, elemTrapProg(t, ir.OpLoadElem, idx), 0, 0)
		})
		t.Run("store-"+name, func(t *testing.T) {
			runBoth(t, elemTrapProg(t, ir.OpStoreElem, idx), 0, 0)
		})
	}
}

// elemTrapProg builds an element access whose index comes from a global so
// the bounds check happens at run time.
func elemTrapProg(t *testing.T, op ir.Op, idx int64) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []*ir.Global{
		{Name: "a", Type: ir.TInt, Len: 8, Array: true},
		{Name: "gi", Type: ir.TInt, Len: 1, Init: []int64{idx}},
	} {
		if err := p.AddGlobal(g); err != nil {
			t.Fatal(err)
		}
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	bd := ir.NewBuilder(f)
	ri := bd.LoadG(p.Global("gi"))
	if op == ir.OpLoadElem {
		bd.RetVal(bd.LoadElem(p.Global("a"), ri))
	} else {
		bd.StoreElem(p.Global("a"), ri, ri)
		bd.RetVal(ri)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.NumberBranches(true)
	return p
}

// TestCallPrintConformance covers OpCall (value result, dropped result,
// argument passing) and OpPrint (checksum and print counters), plus the
// depth limit: unbounded recursion must hit ErrLimit identically.
func TestCallPrintConformance(t *testing.T) {
	runBoth(t, compileSrc(t, `
func emit(x int) {
    print(x);
}

func add3(a int, b int, c int) int {
    return a + b + c;
}

func main() int {
    emit(7);
    emit(add3(1, 2, 3));
    var s int = 0;
    for var i int = 0; i < 10; i = i + 1 {
        s = s + add3(i, i * 2, 1);
    }
    print(s);
    return s;
}`), 0, 0)

	t.Run("depth-limit", func(t *testing.T) {
		runBoth(t, compileSrc(t, `
func down(n int) int {
    return down(n + 1);
}

func main() int {
    return down(0);
}`), 0, 0)
	})
}

// TestBranchConformance covers the raw vBr path (a branch on a value that
// is not a fused comparison) and prediction scoring in both directions.
func TestBranchConformance(t *testing.T) {
	prog := compileSrc(t, `
var bits int = 6;

func main() int {
    var n int = 0;
    for var i int = 0; i < 16; i = i + 1 {
        if (bits / (i + 1)) % 2 != 0 {
            n = n + 1;
        }
    }
    return n;
}`)
	for _, pred := range []ir.Prediction{ir.PredNone, ir.PredTaken, ir.PredNotTaken} {
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				if b.Term.Op == ir.TermBr {
					b.Term.Pred = pred
				}
			}
		}
		runBoth(t, prog, 0, 0)
	}
}

// TestConformanceCoversEveryOp fails when an ir.Op has no conformance
// coverage, so the suite cannot silently fall behind the instruction set.
func TestConformanceCoversEveryOp(t *testing.T) {
	covered := map[ir.Op]bool{
		// Exercised by the dedicated structural tests above.
		ir.OpNop: true, ir.OpConstI: true, ir.OpConstF: true,
		ir.OpLoadG: true, ir.OpStoreG: true,
		ir.OpLoadElem: true, ir.OpStoreElem: true,
		ir.OpCall: true, ir.OpPrint: true,
	}
	for _, c := range opCases {
		covered[c.op] = true
	}
	for _, c := range trapCases {
		covered[c.op] = true
	}
	for op := ir.Op(1); op.Valid(); op++ {
		if !covered[op] {
			t.Errorf("ir.Op %v has no conformance case", op)
		}
	}
}
