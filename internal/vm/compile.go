package vm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ir"
	"repro/internal/ssa"
)

// Compile lowers prog through SSA into bytecode. The input must be a valid
// program (ir.Program.Validate); the result is immutable and safe for
// concurrent NewMachine use. Compile never mutates prog, but the compiled
// code keeps pointers to prog's branch terminators: site numbering and
// prediction annotations are read through them at execution time, exactly
// like the interpreter.
func Compile(p *ir.Program) (*Program, error) {
	sp, err := ssa.Build(p)
	if err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	ssa.Optimize(sp)
	ssa.Destruct(sp)

	prog := &Program{ir: p, funcs: make([]*vmFunc, len(sp.Funcs))}
	// Renumber globals: scalars into one flat vector, arrays into their own
	// dense space, so scalar access is a single slice index at run time.
	prog.scalarIdx = make([]int32, len(p.Globals))
	arrIdx := make([]int32, len(p.Globals))
	nScalar := int32(0)
	for i, g := range p.Globals {
		prog.scalarIdx[i], arrIdx[i] = -1, -1
		if g.Array {
			arrIdx[i] = int32(len(prog.arrGID))
			prog.arrGID = append(prog.arrGID, int32(i))
		} else {
			prog.scalarIdx[i] = nScalar
			nScalar++
		}
	}
	type callPatch struct{ fn, site, callee int }
	var patches []callPatch
	for i, sf := range sp.Funcs {
		fn, callees, err := compileFunc(sf, prog.scalarIdx, arrIdx)
		if err != nil {
			return nil, fmt.Errorf("vm: %s: %w", sf.Ir.Name, err)
		}
		prog.funcs[i] = fn
		for site, callee := range callees {
			patches = append(patches, callPatch{i, site, callee})
		}
	}
	for _, cp := range patches {
		prog.funcs[cp.fn].calls[cp.site].fn = prog.funcs[cp.callee]
	}
	if mf := p.Func("main"); mf != nil {
		prog.main = prog.funcs[mf.ID]
	}
	return prog, nil
}

// mOp is one modelled instruction before slot assignment: operands are still
// SSA values. dst names the storage the result lands in — for a phi-writing
// copy that is the phi variable, not the copy value.
type mOp struct {
	op   uint16
	dst  *ssa.Value
	a, b *ssa.Value
	imm  int64
	imm2 int64        // second immediate (vIncG: the scalar-global ID)
	args []*ssa.Value // call arguments
}

// mBlock is one modelled block: lowered body plus the terminator shape.
type mBlock struct {
	b      *ssa.Block
	code   []mOp
	termOp uint16
	// condA/condB are the branch operands (condB nil for vBr and K forms);
	// retVal is the return operand; termImm the K immediate.
	condA, condB *ssa.Value
	retVal       *ssa.Value
	termImm      int64
}

func compileFunc(f *ssa.Func, scalarIdx, arrIdx []int32) (*vmFunc, []int, error) {
	// Pass 1: use counts decide branch fusion and constant pruning.
	uses := map[*ssa.Value]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Code {
			for _, a := range v.Args {
				uses[a]++
			}
		}
		if b.Term.Cond != nil {
			uses[b.Term.Cond]++
		}
		if b.Term.Val != nil {
			uses[b.Term.Val]++
		}
	}
	fused := map[*ssa.Value]bool{}
	for _, b := range f.Blocks {
		if b.Term.Op != ir.TermBr {
			continue
		}
		c := b.Term.Cond
		if !c.Op.IsPseudo() && c.Op.IR().IsCompare() && uses[c] == 1 {
			fused[c] = true
		}
	}

	// Pass 2: lower each block to model instructions. Constants are pulled
	// out, deduplicated by bit pattern, and materialised once at function
	// entry: a literal inside a loop then costs one dispatch per call
	// instead of one per iteration. (The interpreter re-executes OpConst
	// every iteration, but step accounting uses original block weights, so
	// hoisting is unobservable.)
	blocks := make([]*mBlock, 0, len(f.Blocks))
	blockIdx := map[*ssa.Block]int{}
	constOf := map[int64]*ssa.Value{}
	remap := map[*ssa.Value]*ssa.Value{}
	var constOrder []*ssa.Value
	cI, cF := ssa.FromIR(ir.OpConstI), ssa.FromIR(ir.OpConstF)
	for _, b := range f.Blocks {
		mb := &mBlock{b: b}
		for _, v := range b.Code {
			if v.Op == ssa.OpParam || v.Op == ssa.OpPhi || fused[v] {
				continue
			}
			if v.Op == cI || v.Op == cF {
				if c0, ok := constOf[v.Imm]; ok {
					remap[v] = c0
					uses[c0] += uses[v]
				} else {
					constOf[v.Imm] = v
					constOrder = append(constOrder, v)
				}
				continue
			}
			if v.Op == ssa.OpCopy {
				dst := v
				if v.Phi != nil {
					dst = v.Phi
				}
				mb.code = append(mb.code, mOp{op: vMov, dst: dst, a: v.Args[0]})
				continue
			}
			op, err := lowerValue(v)
			if err != nil {
				return nil, nil, err
			}
			mb.code = append(mb.code, op)
		}
		if err := lowerTerm(mb, fused); err != nil {
			return nil, nil, err
		}
		blockIdx[b] = len(blocks)
		blocks = append(blocks, mb)
	}
	rm := func(v *ssa.Value) *ssa.Value {
		if r, ok := remap[v]; ok {
			return r
		}
		return v
	}
	for _, mb := range blocks {
		for i := range mb.code {
			op := &mb.code[i]
			op.a, op.b = rm(op.a), rm(op.b)
			for ai := range op.args {
				op.args[ai] = rm(op.args[ai])
			}
		}
		mb.condA, mb.condB, mb.retVal = rm(mb.condA), rm(mb.condB), rm(mb.retVal)
	}
	if len(constOrder) > 0 {
		emb := blocks[blockIdx[f.Entry]]
		pre := make([]mOp, 0, len(constOrder)+len(emb.code))
		for _, cv := range constOrder {
			pre = append(pre, mOp{op: vConst, dst: cv, imm: cv.Imm})
		}
		emb.code = append(pre, emb.code...)
	}

	// Fuse global read-modify-write triples (load g; add/sub immediate;
	// store g) into one vIncG when the two intermediate values have no
	// other use. The three IR instructions stay in the block's step weight,
	// so the fusion is unobservable.
	for _, mb := range blocks {
		kept := mb.code[:0]
		for i := 0; i < len(mb.code); i++ {
			if i+2 < len(mb.code) {
				ld, ad, st := &mb.code[i], &mb.code[i+1], &mb.code[i+2]
				if ld.op == vLoadG && st.op == vStoreG && st.imm == ld.imm &&
					(ad.op == vAddIK || ad.op == vSubIK) &&
					ad.a == ld.dst && st.a == ad.dst &&
					uses[ld.dst] == 1 && uses[ad.dst] == 1 &&
					!(ad.op == vSubIK && ad.imm == math.MinInt64) {
					k := ad.imm
					if ad.op == vSubIK {
						k = -k
					}
					kept = append(kept, mOp{op: vIncG, imm: k, imm2: ld.imm})
					i += 2
					continue
				}
			}
			kept = append(kept, mb.code[i])
		}
		mb.code = kept
	}

	// Pass 3: prune constants whose every use was absorbed into an
	// immediate field — they no longer need a register.
	referenced := map[*ssa.Value]bool{}
	ref := func(v *ssa.Value) {
		if v != nil {
			referenced[v] = true
		}
	}
	for _, mb := range blocks {
		for i := range mb.code {
			op := &mb.code[i]
			ref(op.a)
			ref(op.b)
			for _, av := range op.args {
				ref(av)
			}
		}
		ref(mb.condA)
		ref(mb.condB)
		ref(mb.retVal)
	}
	for _, mb := range blocks {
		kept := mb.code[:0]
		for _, op := range mb.code {
			if op.op == vConst && !referenced[op.dst] {
				continue
			}
			kept = append(kept, op)
		}
		mb.code = kept
	}

	// Pass 4: register allocation over conservative live hulls.
	slotOf, nSlots := allocate(f, blocks, blockIdx, uses)
	if nSlots > math.MaxInt16 {
		return nil, nil, fmt.Errorf("function needs %d slots (limit %d)", nSlots, math.MaxInt16)
	}

	// Pass 5: emission.
	fn := &vmFunc{
		name:    f.Ir.Name,
		id:      f.Ir.ID,
		nParams: f.Ir.NParams,
		nSlots:  nSlots,
	}
	slot := func(v *ssa.Value) int16 {
		if v == nil {
			return -1
		}
		s, ok := slotOf[v]
		if !ok {
			return -1
		}
		return int16(s)
	}
	blockPC := map[*ssa.Block]int32{}
	type jmpPatch struct {
		pc     int
		target *ssa.Block
	}
	type brPatch struct {
		idx       int
		then, els *ssa.Block
	}
	type swPatch struct {
		idx     int
		targets []*ssa.Block // cases then default, indexed by outcome
	}
	var jmps []jmpPatch
	var brps []brPatch
	var swps []swPatch
	var callees []int
	// touchesSlot reports whether emitted instruction in reads or writes
	// frame slot d (the copy-coalescing interference check).
	touchesSlot := func(in *instr, d int16) bool {
		if in.dst == d || in.a == d || in.b == d {
			return true
		}
		if in.op == vCall {
			for _, as := range fn.calls[in.imm].args {
				if as == d {
					return true
				}
			}
		}
		return false
	}
	for _, mb := range blocks {
		blockPC[mb.b] = int32(len(fn.code))
		fn.spans = append(fn.spans, span{start: int32(len(fn.code)), label: mb.b.String()})
		bodyStart := len(fn.code)
		// defs[i] is the SSA value defined by fn.code[bodyStart+i], for the
		// coalescing scan below.
		var defs []*ssa.Value
		emit := func(in instr, def *ssa.Value) {
			fn.code = append(fn.code, in)
			defs = append(defs, def)
		}
		for _, op := range mb.code {
			switch op.op {
			case vMov:
				d, s := slot(op.dst), slot(op.a)
				if d == s {
					continue
				}
				// Coalesce: when the copied value has this copy as its only
				// use and was defined in this block, rewrite the defining
				// instruction to write the copy's destination directly. Safe
				// when nothing between the definition and here touches the
				// destination slot (within one instruction, operand reads
				// precede the destination write).
				if uses[op.a] == 1 && op.a.Op != ssa.OpPhi {
					coalesced := false
					for j := len(fn.code) - 1; j >= bodyStart; j-- {
						if defs[j-bodyStart] != op.a {
							continue
						}
						ok := true
						for k := j + 1; k < len(fn.code); k++ {
							if touchesSlot(&fn.code[k], d) {
								ok = false
								break
							}
						}
						if ok {
							fn.code[j].dst = d
							defs[j-bodyStart] = nil
							coalesced = true
						}
						break
					}
					if coalesced {
						continue
					}
				}
				emit(instr{op: vMov, dst: d, a: s}, nil)
			case vCall:
				args := make([]int16, len(op.args))
				for i, av := range op.args {
					args[i] = slot(av)
				}
				ci := len(fn.calls)
				fn.calls = append(fn.calls, callInfo{args: args})
				callees = append(callees, int(op.imm))
				d := int16(-1)
				var def *ssa.Value
				if uses[op.dst] > 0 {
					d = slot(op.dst)
					def = op.dst
				}
				emit(instr{op: vCall, dst: d, imm: int64(ci)}, def)
			case vIncG:
				emit(instr{op: vIncG, a: int16(scalarIdx[op.imm2]), imm: op.imm}, nil)
			case vLoadG:
				emit(instr{op: vLoadG, dst: slot(op.dst), imm: int64(scalarIdx[op.imm])}, op.dst)
			case vStoreG:
				emit(instr{op: vStoreG, a: slot(op.a), imm: int64(scalarIdx[op.imm])}, nil)
			case vLoadElem:
				emit(instr{op: vLoadElem, dst: slot(op.dst), a: slot(op.a), imm: int64(arrIdx[op.imm])}, op.dst)
			case vStoreElem:
				emit(instr{op: vStoreElem, a: slot(op.a), b: slot(op.b), imm: int64(arrIdx[op.imm])}, nil)
			default:
				var def *ssa.Value
				if op.dst != nil {
					def = op.dst
				}
				emit(instr{
					op: op.op, dst: slot(op.dst), a: slot(op.a), b: slot(op.b), imm: op.imm,
				}, def)
			}
		}
		b := mb.b
		switch b.Term.Op {
		case ir.TermJmp:
			blk := int16(-1)
			if t := b.Term.Then; t.Orig != nil {
				blk = int16(t.Orig.ID)
			}
			jmps = append(jmps, jmpPatch{len(fn.code), b.Term.Then})
			fn.code = append(fn.code, instr{op: vJmp, a: blk, imm: int64(b.Weight)})
		case ir.TermRet:
			fn.code = append(fn.code, instr{op: vRet, a: slot(mb.retVal), imm: int64(b.Weight)})
		case ir.TermBr:
			if b.Term.Src == nil {
				return nil, nil, fmt.Errorf("%s: conditional branch without source terminator", b)
			}
			bi := len(fn.brs)
			fn.brs = append(fn.brs, brInfo{weight: b.Weight, term: b.Term.Src})
			brps = append(brps, brPatch{bi, b.Term.Then, b.Term.Else})
			fn.code = append(fn.code, instr{
				op: mb.termOp, dst: int16(bi), a: slot(mb.condA), b: slot(mb.condB), imm: mb.termImm,
			})
		case ir.TermSwitch:
			if b.Term.Src == nil {
				return nil, nil, fmt.Errorf("%s: switch without source terminator", b)
			}
			si := len(fn.sws)
			fn.sws = append(fn.sws, swInfo{weight: b.Weight, term: b.Term.Src})
			targets := make([]*ssa.Block, 0, len(b.Term.Targets)+1)
			targets = append(targets, b.Term.Targets...)
			targets = append(targets, b.Term.Else)
			swps = append(swps, swPatch{si, targets})
			fn.code = append(fn.code, instr{op: vSwitch, dst: int16(si), a: slot(mb.condA)})
		default:
			return nil, nil, fmt.Errorf("%s: missing terminator", b)
		}
	}
	if len(fn.code) > math.MaxInt16 || len(fn.brs) > math.MaxInt16 ||
		len(fn.sws) > math.MaxInt16 || len(f.Ir.Blocks) > math.MaxInt16 {
		return nil, nil, fmt.Errorf("function too large for int16 bytecode fields (%d instrs, %d branches)",
			len(fn.code), len(fn.brs))
	}
	for _, jp := range jmps {
		fn.code[jp.pc].dst = int16(blockPC[jp.target])
	}
	for _, bp := range brps {
		br := &fn.brs[bp.idx]
		br.thenPC, br.elsePC = blockPC[bp.then], blockPC[bp.els]
		br.thenBlk, br.elseBlk = -1, -1
		if bp.then.Orig != nil {
			br.thenBlk = int32(bp.then.Orig.ID)
		}
		if bp.els.Orig != nil {
			br.elseBlk = int32(bp.els.Orig.ID)
		}
		// An edge block whose copies all coalesced away is a bare weightless
		// jump; route the branch straight through it. The jump's block
		// annotation (the real target) moves onto the branch edge so the
		// bookkeeping still fires.
		if in := &fn.code[br.thenPC]; in.op == vJmp && in.imm == 0 {
			br.thenBlk, br.thenPC = int32(in.a), int32(in.dst)
		}
		if in := &fn.code[br.elsePC]; in.op == vJmp && in.imm == 0 {
			br.elseBlk, br.elsePC = int32(in.a), int32(in.dst)
		}
	}
	for _, sp := range swps {
		sw := &fn.sws[sp.idx]
		sw.pcs = make([]int32, len(sp.targets))
		sw.blks = make([]int32, len(sp.targets))
		for oi, t := range sp.targets {
			sw.pcs[oi] = blockPC[t]
			sw.blks[oi] = -1
			if t.Orig != nil {
				sw.blks[oi] = int32(t.Orig.ID)
			}
			// Route through coalesced-away edge blocks, like branch edges.
			if in := &fn.code[sw.pcs[oi]]; in.op == vJmp && in.imm == 0 {
				sw.blks[oi], sw.pcs[oi] = int32(in.a), int32(in.dst)
			}
		}
	}
	// Fuse a phi copy that ends in a weightless edge-block jump into one
	// vMovJ0 dispatch. The jump carries no step weight and no block
	// annotation (a==-1), so skipping it is unobservable; the leftover vJmp
	// is unreachable (edge blocks have exactly one predecessor, the branch).
	for pc := 0; pc+1 < len(fn.code); pc++ {
		if fn.code[pc].op == vMov && fn.code[pc+1].op == vJmp &&
			fn.code[pc+1].imm == 0 && fn.code[pc+1].a == -1 {
			fn.code[pc] = instr{op: vMovJ0, dst: fn.code[pc].dst, a: fn.code[pc].a, b: fn.code[pc+1].dst}
		}
	}
	fn.entryPC = blockPC[f.Entry]
	fn.entryBlk = int32(f.Entry.Orig.ID)
	return fn, callees, nil
}

// opLower maps pure ir opcodes with a direct bytecode counterpart.
var opLower = map[ir.Op]uint16{
	ir.OpAddI: vAddI, ir.OpSubI: vSubI, ir.OpMulI: vMulI,
	ir.OpDivI: vDivI, ir.OpModI: vModI,
	ir.OpAndI: vAndI, ir.OpOrI: vOrI, ir.OpXorI: vXorI,
	ir.OpShlI: vShlI, ir.OpShrI: vShrI,
	ir.OpNegI: vNegI, ir.OpNotI: vNotI,
	ir.OpAddF: vAddF, ir.OpSubF: vSubF, ir.OpMulF: vMulF,
	ir.OpDivF: vDivF, ir.OpNegF: vNegF,
	ir.OpEqI: vEqI, ir.OpNeI: vNeI, ir.OpLtI: vLtI,
	ir.OpLeI: vLeI, ir.OpGtI: vGtI, ir.OpGeI: vGeI,
	ir.OpEqF: vEqF, ir.OpNeF: vNeF, ir.OpLtF: vLtF,
	ir.OpLeF: vLeF, ir.OpGtF: vGtF, ir.OpGeF: vGeF,
	ir.OpItoF: vItoF, ir.OpFtoI: vFtoI,
	ir.OpSqrtF: vSqrtF, ir.OpAbsI: vAbsI, ir.OpAbsF: vAbsF,
	ir.OpMinI: vMinI, ir.OpMaxI: vMaxI, ir.OpMinF: vMinF, ir.OpMaxF: vMaxF,
}

// immOps maps int binary ops to their immediate form; mirrorOps is the
// immediate form when the constant is the left operand (comparisons flip).
var immOps = map[ir.Op]uint16{
	ir.OpAddI: vAddIK, ir.OpSubI: vSubIK, ir.OpMulI: vMulIK,
	ir.OpEqI: vEqIK, ir.OpNeI: vNeIK,
	ir.OpLtI: vLtIK, ir.OpLeI: vLeIK, ir.OpGtI: vGtIK, ir.OpGeI: vGeIK,
}
var mirrorOps = map[ir.Op]uint16{
	ir.OpAddI: vAddIK, ir.OpMulI: vMulIK,
	ir.OpEqI: vEqIK, ir.OpNeI: vNeIK,
	ir.OpLtI: vGtIK, ir.OpLeI: vGeIK, ir.OpGtI: vLtIK, ir.OpGeI: vLeIK,
}

func isConstI(v *ssa.Value) bool { return v.Op == ssa.FromIR(ir.OpConstI) }

// immForm rewrites op(a, b) into an immediate form when exactly one operand
// is an integer constant. Returns ok=false when no immediate form applies.
func immForm(iop ir.Op, a, b *ssa.Value) (op uint16, reg *ssa.Value, imm int64, ok bool) {
	if isConstI(b) && !isConstI(a) {
		if k, found := immOps[iop]; found {
			return k, a, b.Imm, true
		}
		return 0, nil, 0, false
	}
	if isConstI(a) && !isConstI(b) {
		if k, found := mirrorOps[iop]; found {
			return k, b, a.Imm, true
		}
	}
	return 0, nil, 0, false
}

func lowerValue(v *ssa.Value) (mOp, error) {
	iop := v.Op.IR()
	switch iop {
	case ir.OpConstI, ir.OpConstF:
		return mOp{op: vConst, dst: v, imm: v.Imm}, nil
	case ir.OpMov:
		return mOp{op: vMov, dst: v, a: v.Args[0]}, nil
	case ir.OpCall:
		return mOp{op: vCall, dst: v, args: v.Args, imm: v.Imm}, nil
	case ir.OpPrint:
		return mOp{op: vPrint, a: v.Args[0]}, nil
	case ir.OpLoadG:
		return mOp{op: vLoadG, dst: v, imm: v.Imm}, nil
	case ir.OpStoreG:
		return mOp{op: vStoreG, a: v.Args[0], imm: v.Imm}, nil
	case ir.OpLoadElem:
		return mOp{op: vLoadElem, dst: v, a: v.Args[0], imm: v.Imm}, nil
	case ir.OpStoreElem:
		return mOp{op: vStoreElem, a: v.Args[0], b: v.Args[1], imm: v.Imm}, nil
	}
	base, ok := opLower[iop]
	if !ok {
		return mOp{}, fmt.Errorf("no lowering for %s", iop)
	}
	switch len(v.Args) {
	case 1:
		return mOp{op: base, dst: v, a: v.Args[0]}, nil
	case 2:
		if k, reg, imm, ok := immForm(iop, v.Args[0], v.Args[1]); ok {
			return mOp{op: k, dst: v, a: reg, imm: imm}, nil
		}
		return mOp{op: base, dst: v, a: v.Args[0], b: v.Args[1]}, nil
	}
	return mOp{}, fmt.Errorf("bad arity for %s", iop)
}

// brFused maps a compare op to its fused branch opcode; brFusedK and
// brFusedMirrorK are the immediate forms (right-constant and left-constant).
var brFused = map[ir.Op]uint16{
	ir.OpEqI: vBrEqI, ir.OpNeI: vBrNeI, ir.OpLtI: vBrLtI,
	ir.OpLeI: vBrLeI, ir.OpGtI: vBrGtI, ir.OpGeI: vBrGeI,
	ir.OpEqF: vBrEqF, ir.OpNeF: vBrNeF, ir.OpLtF: vBrLtF,
	ir.OpLeF: vBrLeF, ir.OpGtF: vBrGtF, ir.OpGeF: vBrGeF,
}
var brFusedK = map[ir.Op]uint16{
	ir.OpEqI: vBrEqIK, ir.OpNeI: vBrNeIK, ir.OpLtI: vBrLtIK,
	ir.OpLeI: vBrLeIK, ir.OpGtI: vBrGtIK, ir.OpGeI: vBrGeIK,
}
var brFusedMirrorK = map[ir.Op]uint16{
	ir.OpEqI: vBrEqIK, ir.OpNeI: vBrNeIK, ir.OpLtI: vBrGtIK,
	ir.OpLeI: vBrGeIK, ir.OpGtI: vBrLtIK, ir.OpGeI: vBrLeIK,
}

func lowerTerm(mb *mBlock, fused map[*ssa.Value]bool) error {
	b := mb.b
	switch b.Term.Op {
	case ir.TermJmp:
		mb.termOp = vJmp
	case ir.TermRet:
		mb.termOp = vRet
		mb.retVal = b.Term.Val
	case ir.TermSwitch:
		mb.termOp = vSwitch
		mb.condA = b.Term.Cond
	case ir.TermBr:
		c := b.Term.Cond
		if !fused[c] {
			mb.termOp = vBr
			mb.condA = c
			return nil
		}
		iop := c.Op.IR()
		a, bb := c.Args[0], c.Args[1]
		if isConstI(bb) && !isConstI(a) {
			if k, ok := brFusedK[iop]; ok {
				mb.termOp, mb.condA, mb.termImm = k, a, bb.Imm
				return nil
			}
		}
		if isConstI(a) && !isConstI(bb) {
			if k, ok := brFusedMirrorK[iop]; ok {
				mb.termOp, mb.condA, mb.termImm = k, bb, a.Imm
				return nil
			}
		}
		mb.termOp = brFused[iop]
		mb.condA, mb.condB = a, bb
	default:
		return fmt.Errorf("%s: missing terminator", b)
	}
	return nil
}

// allocate runs liveness analysis over the modelled code and assigns frame
// slots by linear scan over conservative live hulls (one [min,max] range per
// value covering every point where it can be live). Parameters are pinned to
// slots 0..NParams-1, which are never recycled: callers copy arguments there.
func allocate(f *ssa.Func, blocks []*mBlock, blockIdx map[*ssa.Block]int, uses map[*ssa.Value]int) (map[*ssa.Value]int32, int) {
	// Dense value numbering in deterministic walk order.
	vregOf := map[*ssa.Value]int{}
	var vregs []*ssa.Value
	add := func(v *ssa.Value) {
		if v == nil {
			return
		}
		if _, ok := vregOf[v]; !ok {
			vregOf[v] = len(vregs)
			vregs = append(vregs, v)
		}
	}
	var params []*ssa.Value
	for _, v := range f.Entry.Code {
		if v.Op == ssa.OpParam {
			params = append(params, v)
			add(v)
		}
	}
	nPinned := len(vregs)
	for _, mb := range blocks {
		for i := range mb.code {
			op := &mb.code[i]
			if op.op == vCall && uses[op.dst] == 0 {
				// Result dropped; no storage needed.
			} else {
				add(op.dst)
			}
			add(op.a)
			add(op.b)
			for _, av := range op.args {
				add(av)
			}
		}
		add(mb.condA)
		add(mb.condB)
		add(mb.retVal)
	}
	nv := len(vregs)

	// Positions: one per block start, one per instruction, one per
	// terminator, in layout order.
	blockStart := make([]int, len(blocks))
	blockEnd := make([]int, len(blocks))
	pos := 0
	for bi, mb := range blocks {
		blockStart[bi] = pos
		pos++
		pos += len(mb.code)
		blockEnd[bi] = pos
		pos++
	}

	hullMin := make([]int, nv)
	hullMax := make([]int, nv)
	for i := range hullMin {
		hullMin[i] = -1
	}
	touch := func(v *ssa.Value, p int) {
		if v == nil {
			return
		}
		r, ok := vregOf[v]
		if !ok {
			return
		}
		if hullMin[r] < 0 || p < hullMin[r] {
			hullMin[r] = p
		}
		if p > hullMax[r] {
			hullMax[r] = p
		}
	}

	// Block-level gen/kill sets as bitsets.
	words := (nv + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	get := func(s []uint64, r int) bool { return s[r>>6]&(1<<(uint(r)&63)) != 0 }
	set := func(s []uint64, r int) { s[r>>6] |= 1 << (uint(r) & 63) }

	use := make([][]uint64, len(blocks))
	def := make([][]uint64, len(blocks))
	liveIn := make([][]uint64, len(blocks))
	liveOut := make([][]uint64, len(blocks))
	for bi, mb := range blocks {
		use[bi], def[bi] = newSet(), newSet()
		liveIn[bi], liveOut[bi] = newSet(), newSet()
		p := blockStart[bi] + 1
		upUse := func(v *ssa.Value) {
			if v == nil {
				return
			}
			r := vregOf[v]
			if !get(def[bi], r) {
				set(use[bi], r)
			}
		}
		for i := range mb.code {
			op := &mb.code[i]
			upUse(op.a)
			upUse(op.b)
			for _, av := range op.args {
				upUse(av)
			}
			touch(op.a, p)
			touch(op.b, p)
			for _, av := range op.args {
				touch(av, p)
			}
			if op.dst != nil {
				if r, ok := vregOf[op.dst]; ok {
					set(def[bi], r)
					touch(op.dst, p)
					_ = r
				}
			}
			p++
		}
		upUse(mb.condA)
		upUse(mb.condB)
		upUse(mb.retVal)
		touch(mb.condA, blockEnd[bi])
		touch(mb.condB, blockEnd[bi])
		touch(mb.retVal, blockEnd[bi])
	}
	for _, pv := range params {
		touch(pv, blockStart[blockIdx[f.Entry]])
	}

	// Backward fixpoint.
	for changed := true; changed; {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			mb := blocks[bi]
			out := liveOut[bi]
			for w := range out {
				out[w] = 0
			}
			flow := func(s *ssa.Block) {
				if s == nil {
					return
				}
				si := blockIdx[s]
				for w := range out {
					out[w] |= liveIn[si][w]
				}
			}
			flow(mb.b.Term.Then)
			flow(mb.b.Term.Else)
			for _, s := range mb.b.Term.Targets {
				flow(s)
			}
			for w := 0; w < words; w++ {
				nin := use[bi][w] | (out[w] &^ def[bi][w])
				if nin != liveIn[bi][w] {
					liveIn[bi][w] = nin
					changed = true
				}
			}
		}
	}

	// Extend hulls over block boundaries where values are live.
	for bi := range blocks {
		for r := 0; r < nv; r++ {
			if get(liveIn[bi], r) {
				touch(vregs[r], blockStart[bi])
			}
			if get(liveOut[bi], r) {
				touch(vregs[r], blockEnd[bi])
			}
		}
	}

	// Linear scan. Pinned parameter slots are excluded from recycling.
	slotOf := make(map[*ssa.Value]int32, nv)
	for _, pv := range params {
		slotOf[pv] = int32(pv.Imm)
	}
	type interval struct {
		r, start, end int
	}
	ivs := make([]interval, 0, nv-nPinned)
	for r := nPinned; r < nv; r++ {
		if hullMin[r] < 0 {
			continue
		}
		ivs = append(ivs, interval{r, hullMin[r], hullMax[r]})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].r < ivs[j].r
	})
	next := int32(f.Ir.NParams)
	var free intHeap
	var active endHeap
	for _, iv := range ivs {
		for len(active) > 0 && active[0].end < iv.start {
			free.push(active[0].slot)
			active.pop()
		}
		var s int32
		if len(free) > 0 {
			s = free.pop()
		} else {
			s = next
			next++
		}
		slotOf[vregs[iv.r]] = s
		active.push(activeEntry{end: iv.end, slot: s})
	}
	nSlots := int(next)
	if nSlots < f.Ir.NParams {
		nSlots = f.Ir.NParams
	}
	return slotOf, nSlots
}

// intHeap is a minimal min-heap of free slots (smallest slot reused first,
// keeping frames dense and allocation deterministic).
type intHeap []int32

func (h *intHeap) push(v int32) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *intHeap) pop() int32 {
	old := *h
	v := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.sift(0)
	return v
}

func (h intHeap) sift(i int) {
	n := len(h)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h[l] < h[m] {
			m = l
		}
		if r < n && h[r] < h[m] {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

type activeEntry struct {
	end  int
	slot int32
}

// endHeap is a min-heap of active intervals keyed by end position.
type endHeap []activeEntry

func (h *endHeap) push(e activeEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].end <= (*h)[i].end {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *endHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && old[l].end < old[m].end {
			m = l
		}
		if r < n && old[r].end < old[m].end {
			m = r
		}
		if m == i {
			return
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
}
