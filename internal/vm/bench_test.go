package vm_test

import (
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/vm"
)

// BenchmarkDispatch compares raw dispatch throughput (no collectors
// attached, the live-run configuration) between the two backends. The
// reported branches/s drives the exec speedup figures.
func BenchmarkDispatch(b *testing.B) {
	for _, name := range []string{"compress", "doduc", "cc"} {
		w, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := bench.Compile(w)
		if err != nil {
			b.Fatal(err)
		}
		const budget = 500_000
		b.Run(name+"/interp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := interp.New(c.Prog)
				m.MaxBranches = budget
				if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Branches), "branches/op")
			}
		})
		vp, err := vm.Compile(c.Prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/vm", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := vp.NewMachine()
				m.SetMaxBranches(budget)
				if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Counters().Branches), "branches/op")
			}
		})
	}
}
