// Package vm is the compiled execution backend: it lowers IR programs
// through internal/ssa into a register-allocated flat bytecode and executes
// it with a tight dispatch loop. The machine is observably identical to
// internal/interp — same counters, same trace events in the same order, same
// trap errors (it returns interp.ErrLimit and *interp.RuntimeError), same
// context-cancellation polling cadence — while executing fewer, denser
// instructions: SSA cleanup removes dead and copied values, constants fold,
// compare-and-branch pairs fuse into one opcode, and constant operands ride
// in the instruction word instead of a register.
package vm

import "repro/internal/ir"

// instr is one flat bytecode instruction: an opcode, up to three register
// slots, and a 64-bit immediate. The meaning of the fields is per-opcode
// (see the v* constants). 16 bytes (a power-of-two stride) keeps a whole
// loop body in one cache line; the int16 fields bound frames, code, and
// branch tables at 32k entries each, which Compile enforces.
type instr struct {
	op  uint16
	dst int16
	a   int16
	b   int16
	imm int64
}

// Bytecode opcodes. Slot fields are frame-slot indexes unless noted.
const (
	vInvalid uint16 = iota

	vConst // dst = imm (integer value or float bits)
	vMov   // dst = a

	vAddI // dst = a + b
	vSubI
	vMulI
	vDivI // traps on zero divisor; MinInt64 / -1 wraps
	vModI // traps on zero divisor; x % -1 = 0
	vAndI
	vOrI
	vXorI
	vShlI // dst = a << (b & 63)
	vShrI // dst = a >> (b & 63), arithmetic
	vNegI
	vNotI // dst = (a == 0)

	vAddF
	vSubF
	vMulF
	vDivF
	vNegF

	vEqI
	vNeI
	vLtI
	vLeI
	vGtI
	vGeI
	vEqF
	vNeF
	vLtF
	vLeF
	vGtF
	vGeF

	vItoF
	vFtoI // traps on NaN or out-of-range

	vSqrtF
	vAbsI
	vAbsF
	vMinI
	vMaxI
	vMinF
	vMaxF

	vLoadG     // dst = scalars[imm]
	vStoreG    // scalars[imm] = a
	vLoadElem  // dst = arrays[imm][a]; traps out of bounds
	vStoreElem // arrays[imm][a] = b; traps out of bounds

	vCall  // invoke calls[imm]; dst receives the result (-1 drops it)
	vPrint // checksum <- a

	// Immediate forms: the right operand is the instruction immediate.
	// The compiler canonicalises constant-on-the-left operands (commuting
	// or mirroring the comparison), so one shape per opcode suffices.
	vAddIK // dst = a + imm
	vSubIK // dst = a - imm
	vMulIK
	vEqIK
	vNeIK
	vLtIK
	vLeIK
	vGtIK
	vGeIK

	// Superinstructions the compiler forms from adjacent sequences whose
	// intermediate values have no other use.
	vIncG  // scalars[a] += imm (fused load-global, add-immediate, store-global)
	vMovJ0 // regs[dst] = regs[a]; pc = b (phi copy + weight-0 edge-block jump)

	// Terminators. Every terminator charges the original block's step
	// weight (imm or brInfo.weight) and re-checks MaxSteps, exactly like
	// the interpreter's per-block accounting.
	vJmp // pc = dst; a = target block ID for bookkeeping (-1 none); imm = weight
	vRet // return regs[a] (a = -1: return 0); imm = weight

	// N-way dispatch via sws[dst]: outcome = regs[a] when it indexes the
	// target table, else the default. Charges weight, counts a branch,
	// scores PredIdx, and records a switch trace event, exactly like the
	// interpreter's TermSwitch path.
	vSwitch

	// Conditional branches share the branch tail (count, predict, record,
	// hook, budget check, jump) via brs[dst].
	vBr // taken = regs[a] != 0

	// Fused compare-and-branch: taken = compare(a, b).
	vBrEqI
	vBrNeI
	vBrLtI
	vBrLeI
	vBrGtI
	vBrGeI
	vBrEqF
	vBrNeF
	vBrLtF
	vBrLeF
	vBrGtF
	vBrGeF

	// Fused with immediate right operand: taken = compare(a, imm).
	vBrEqIK
	vBrNeIK
	vBrLtIK
	vBrLeIK
	vBrGtIK
	vBrGeIK

	vOpMax
)

// brInfo is the side table entry of one conditional branch. The *ir.Term is
// the original terminator: the dispatch loop reads Site and Pred through it
// at execution time (matching the interpreter, which scores whatever the
// annotations say at run time) and passes it to the branch hook.
type brInfo struct {
	thenPC, elsePC   int32
	thenBlk, elseBlk int32 // original block IDs for bookkeeping (-1 = edge block)
	weight           uint64
	term             *ir.Term
}

// swInfo is the side table entry of one switch dispatch. pcs and blks are
// indexed by outcome: entries 0..len-2 are the case targets, the last entry
// is the default, mirroring ir.Term's Targets-then-Else successor order.
type swInfo struct {
	pcs    []int32
	blks   []int32 // original block IDs for bookkeeping (-1 = edge block)
	weight uint64
	term   *ir.Term
}

// callInfo is the side table entry of one call site.
type callInfo struct {
	fn   *vmFunc
	args []int16 // caller slots copied into callee slots 0..len-1
}

// span maps a code range to its source block label for trap messages.
type span struct {
	start int32
	label string
}

// vmFunc is one compiled function.
type vmFunc struct {
	name     string
	id       int // ir function ID
	nParams  int
	nSlots   int
	entryPC  int32
	entryBlk int32
	code     []instr
	brs      []brInfo
	sws      []swInfo
	calls    []callInfo
	spans    []span
}

// blockLabel returns the source block label covering pc (trap path only).
func (f *vmFunc) blockLabel(pc int32) string {
	lo, hi := 0, len(f.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.spans[mid].start <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return "?"
	}
	return f.spans[lo-1].label
}

// Program is a compiled program: immutable after Compile and safe for
// concurrent NewMachine calls.
//
// Globals are renumbered into two dense spaces so the machine indexes
// scalars with a single slice access: scalarIdx maps an IR global ID to its
// slot in the flat scalar vector (-1 for arrays), arrGID maps a dense array
// index back to its IR global ID (for lengths, initial values, and trap
// messages).
type Program struct {
	ir        *ir.Program
	funcs     []*vmFunc
	main      *vmFunc
	scalarIdx []int32
	arrGID    []int32
}

// Source returns the IR program this was compiled from.
func (p *Program) Source() *ir.Program { return p.ir }

// NumInstrs reports the total compiled bytecode length (a code-size
// diagnostic; the experiment code-size metric stays IR-based).
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.funcs {
		n += len(f.code)
	}
	return n
}
