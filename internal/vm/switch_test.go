package vm_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/vm"
)

// The switch differential suite pins the compiled backend's TermSwitch path
// to the interpreter's: hand-written BL dispatch shapes through runBoth
// (return value, counters, trace bytes, block counts) plus direct checks of
// the SwHook event stream.

const dispatchLoopSrc = `
var acc int;
func step(op int, x int) int {
	switch op {
	case 0:
		return x + 1;
	case 1:
		return x * 2;
	case 2:
		return x - 3;
	case 5:
		return 0 - x;
	default:
		return x;
	}
	return x;
}
func main() int {
	for var i int = 0; i < 500; i = i + 1 {
		acc = step(i % 7, acc);
	}
	print(acc);
	return acc;
}`

func TestBackendEquivalenceSwitch(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dispatchLoop", dispatchLoopSrc},
		{"noDefaultJoin", `
func main() int {
	var s int = 0;
	for var i int = 0; i < 100; i = i + 1 {
		switch i % 5 {
		case 0:
			s = s + 1;
		case 3:
			s = s + 10;
		}
		s = s + 100;
	}
	return s;
}`},
		{"nestedInLoop", `
var acc int;
func main() int {
	for var i int = 0; i < 60; i = i + 1 {
		switch i % 4 {
		case 0:
			if i > 30 {
				acc = acc + 2;
			} else {
				acc = acc + 1;
			}
		case 1:
			switch i % 3 {
			case 0:
				acc = acc + 5;
			default:
				acc = acc - 1;
			}
		default:
			acc = acc + i;
		}
	}
	return acc;
}`},
		{"negativeTag", `
func main() int {
	var s int = 0;
	for var i int = 0 - 5; i < 5; i = i + 1 {
		switch i {
		case 0:
			s = s + 100;
		case 2:
			s = s + 10;
		default:
			s = s + 1;
		}
	}
	return s;
}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog := compileSrc(t, tc.src)
			runBoth(t, prog, 0, 5_000_000)
			runBoth(t, prog, 100, 5_000_000) // truncated by the branch budget
			runBoth(t, prog, 0, 3_000)       // truncated by the step budget
		})
	}
}

// TestSwitchHookStream checks that the VM's SwHook sees the same (site,
// outcome) sequence the interpreter's does, on the same terminators.
func TestSwitchHookStream(t *testing.T) {
	prog := compileSrc(t, dispatchLoopSrc)

	type ev struct {
		site    int32
		outcome int32
	}
	var ivm, iin []ev

	im := interp.New(prog)
	im.SwHook = func(tm *ir.Term, outcome int32) {
		iin = append(iin, ev{tm.Site, outcome})
	}
	if _, err := im.Run(); err != nil {
		t.Fatal(err)
	}

	vp, err := vm.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	vmach := vp.NewMachine()
	vmach.SetSwHook(func(tm *ir.Term, outcome int32) {
		ivm = append(ivm, ev{tm.Site, outcome})
	})
	if _, err := vmach.Run(); err != nil {
		t.Fatal(err)
	}

	if len(iin) == 0 {
		t.Fatal("interpreter recorded no switch events")
	}
	if len(iin) != len(ivm) {
		t.Fatalf("event count: interp=%d vm=%d", len(iin), len(ivm))
	}
	for i := range iin {
		if iin[i] != ivm[i] {
			t.Fatalf("event %d: interp=%+v vm=%+v", i, iin[i], ivm[i])
		}
	}
}
