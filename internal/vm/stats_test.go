package vm

import (
	"sort"
	"testing"

	"repro/internal/lang"
)

// TestCompileStats is a diagnostic: -v prints the static opcode mix of a
// workload-shaped program so codegen regressions (lost fusion, redundant
// copies) are visible at a glance.
func TestCompileStats(t *testing.T) {
	src := `
var acc int;
var arr [64]int;

func step(i int, j int) int {
    if i % 3 == 0 {
        return i + j;
    }
    return i - j;
}

func main() int {
    for var i int = 0; i < 2000; i = i + 1 {
        var k int = i & 63;
        arr[k] = arr[k] + step(i, k);
        if arr[k] > 100 {
            acc = acc + 1;
        }
    }
    return acc;
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	p, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[uint16]int{}
	total := 0
	for _, f := range p.funcs {
		for i := range f.code {
			hist[f.code[i].op]++
			total++
		}
	}
	irTotal := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			irTotal += len(b.Instrs) + 1
		}
	}
	t.Logf("ir instrs+terms: %d, bytecode instrs: %d", irTotal, total)
	type kv struct {
		op uint16
		n  int
	}
	var ks []kv
	for op, n := range hist {
		ks = append(ks, kv{op, n})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].n > ks[j].n })
	for _, k := range ks {
		t.Logf("  op %3d: %d", k.op, k.n)
	}
}
