package vm

import (
	"context"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Counters is the observable execution summary, field-for-field the
// interpreter's counter set.
type Counters struct {
	Steps        uint64
	Branches     uint64
	Predicted    uint64
	Mispredicted uint64
	Checksum     uint64
	Prints       uint64
}

// Machine executes one compiled program. A Machine is not safe for
// concurrent use; create one per run with Program.NewMachine.
//
// Error identity matches the interpreter exactly: execution limits return
// interp.ErrLimit, traps return *interp.RuntimeError with the same message,
// function, and block label, so callers written against the interpreter
// (errors.Is, error strings in responses) work unchanged.
type Machine struct {
	prog *Program

	hook        func(t *ir.Term, taken bool)
	swHook      func(t *ir.Term, outcome int32)
	rec         *trace.Slab
	maxSteps    uint64
	maxBranches uint64
	maxDepth    int
	ctx         context.Context
	ctxEvery    uint32

	steps        uint64
	branches     uint64
	predicted    uint64
	mispredicted uint64
	checksum     uint64
	prints       uint64

	// scalars holds every non-array global in one flat vector (indexed by
	// Program.scalarIdx); arrays holds the array globals in their own dense
	// space, so a scalar access is a single slice index.
	scalars []int64
	arrays  [][]int64
	pool    [][]int64
	counts  [][]uint64
	ctxLeft uint32
	// slow gates per-block bookkeeping (context polls, block counts).
	slow bool
}

const defaultCtxCheckEvery = 4096

// NewMachine creates a machine with globals initialised, mirroring
// interp.New.
func (p *Program) NewMachine() *Machine {
	m := &Machine{prog: p, maxDepth: 100000}
	m.Reset()
	return m
}

// Reset re-initialises globals and clears all counters.
func (m *Machine) Reset() {
	m.scalars = make([]int64, len(m.prog.ir.Globals)-len(m.prog.arrGID))
	for i, g := range m.prog.ir.Globals {
		if si := m.prog.scalarIdx[i]; si >= 0 && len(g.Init) > 0 {
			m.scalars[si] = g.Init[0]
		}
	}
	m.arrays = make([][]int64, len(m.prog.arrGID))
	for ai, gid := range m.prog.arrGID {
		g := m.prog.ir.Globals[gid]
		buf := make([]int64, g.Len)
		copy(buf, g.Init)
		m.arrays[ai] = buf
	}
	m.steps, m.branches, m.predicted, m.mispredicted = 0, 0, 0, 0
	m.checksum, m.prints = 0, 0
	m.ctxLeft = 0
}

// SetHook installs the per-branch observer (nil disables).
func (m *Machine) SetHook(fn func(t *ir.Term, taken bool)) { m.hook = fn }

// SetSwHook installs the per-switch observer (nil disables), mirroring
// interp.Machine.SwHook: it fires for every executed switch dispatch and for
// the taken edge of every clustering test branch.
func (m *Machine) SetSwHook(fn func(t *ir.Term, outcome int32)) { m.swHook = fn }

// SetRec directs branch events into a trace slab (nil disables). When both
// a hook and a slab are set the slab records first, like the interpreter.
func (m *Machine) SetRec(s *trace.Slab) { m.rec = s }

// SetMaxSteps bounds executed instructions (0 = unlimited).
func (m *Machine) SetMaxSteps(n uint64) { m.maxSteps = n }

// SetMaxBranches bounds executed conditional branches (0 = unlimited).
func (m *Machine) SetMaxBranches(n uint64) { m.maxBranches = n }

// SetMaxDepth bounds the call stack (the default is 100000 frames).
func (m *Machine) SetMaxDepth(n int) { m.maxDepth = n }

// SetContext installs a cancellation context polled every checkEvery
// executed blocks (0 = the 4096-block default), like interp.Machine.Ctx
// and CtxCheckEvery.
func (m *Machine) SetContext(ctx context.Context, checkEvery uint32) {
	m.ctx = ctx
	m.ctxEvery = checkEvery
	m.slow = m.ctx != nil || m.counts != nil
}

// EnableBlockCounts turns on per-block execution counting over the original
// IR block IDs; counts are comparable entry-for-entry with the interpreter's.
func (m *Machine) EnableBlockCounts() {
	m.counts = make([][]uint64, len(m.prog.ir.Funcs))
	for i, f := range m.prog.ir.Funcs {
		m.counts[i] = make([]uint64, len(f.Blocks))
	}
	m.slow = true
}

// BlockCounts returns the per-function, per-block execution counts, or nil.
func (m *Machine) BlockCounts() [][]uint64 { return m.counts }

// SetGlobal overrides a scalar global before a run.
func (m *Machine) SetGlobal(name string, v int64) error {
	g := m.prog.ir.Global(name)
	if g == nil {
		return fmt.Errorf("vm: no global %q", name)
	}
	if g.Array {
		return fmt.Errorf("vm: global %q is an array", name)
	}
	m.scalars[m.prog.scalarIdx[g.ID]] = v
	return nil
}

// GlobalValue reads a scalar global after a run.
func (m *Machine) GlobalValue(name string) (int64, error) {
	g := m.prog.ir.Global(name)
	if g == nil {
		return 0, fmt.Errorf("vm: no global %q", name)
	}
	if g.Array {
		return 0, fmt.Errorf("vm: global %q is an array", name)
	}
	return m.scalars[m.prog.scalarIdx[g.ID]], nil
}

// Counters returns the execution counters.
func (m *Machine) Counters() Counters {
	return Counters{
		Steps: m.steps, Branches: m.branches,
		Predicted: m.predicted, Mispredicted: m.mispredicted,
		Checksum: m.checksum, Prints: m.prints,
	}
}

// Run executes func main with no arguments and returns its value.
func (m *Machine) Run() (int64, error) {
	fn := m.prog.main
	if fn == nil {
		return 0, fmt.Errorf("vm: %w", interp.ErrNoMain)
	}
	if fn.nParams != 0 {
		return 0, fmt.Errorf("vm: %w", interp.ErrMainParams)
	}
	frame := m.getFrame(fn.nSlots)
	ret, err := m.exec(fn, frame, 0)
	m.putFrame(frame)
	return ret, err
}

// getFrame returns a frame of n slots. Slots need not be zeroed: the SSA
// pipeline materialises the interpreter's zero-initialised registers as an
// explicit constant, so compiled code never reads a slot before writing it.
func (m *Machine) getFrame(n int) []int64 {
	if k := len(m.pool); k > 0 {
		f := m.pool[k-1]
		m.pool = m.pool[:k-1]
		if cap(f) >= n {
			return f[:n]
		}
	}
	return make([]int64, n)
}

func (m *Machine) putFrame(f []int64) {
	if len(m.pool) < 256 {
		m.pool = append(m.pool, f)
	}
}

// enterBlock performs the interpreter's per-block bookkeeping (context poll
// then block count) for original block blk; blk < 0 marks a synthesised
// edge block the interpreter never executed, which gets neither.
func (m *Machine) enterBlock(fn *vmFunc, blk int32) error {
	if blk < 0 {
		return nil
	}
	if m.ctx != nil {
		if m.ctxLeft == 0 {
			if err := m.ctx.Err(); err != nil {
				return fmt.Errorf("vm: run cancelled: %w", err)
			}
			if m.ctxLeft = m.ctxEvery; m.ctxLeft == 0 {
				m.ctxLeft = defaultCtxCheckEvery
			}
		}
		m.ctxLeft--
	}
	if m.counts != nil {
		m.counts[fn.id][blk]++
	}
	return nil
}

func (m *Machine) trap(fn *vmFunc, pc int32, msg string) error {
	return &interp.RuntimeError{Func: fn.name, Block: fn.blockLabel(pc), Msg: msg}
}

func f64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fbits(v float64) int64  { return int64(math.Float64bits(v)) }
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// flushCounters writes the dispatch loop's register-resident counters back
// to the machine. Called on every exit path and before recursing into a
// callee (which loads them afresh).
func (m *Machine) flushCounters(steps, branches, predicted, mispredicted uint64) {
	m.steps, m.branches = steps, branches
	m.predicted, m.mispredicted = predicted, mispredicted
}

// exec is the dispatch loop. Non-branch opcodes continue the loop directly;
// conditional branches fall out of the switch into the shared branch tail
// (count, predict, record, hook, budget check, jump), which mirrors the
// interpreter's TermBr path statement for statement.
//
// The hot counters and limits live in locals so the loop touches machine
// memory only for globals, traces, and hooks; a limit of 0 ("unlimited")
// becomes MaxUint64 so each budget check is one compare. Every return path
// flushes the locals back first.
func (m *Machine) exec(fn *vmFunc, regs []int64, depth int) (int64, error) {
	if depth > m.maxDepth {
		return 0, interp.ErrLimit
	}
	if m.slow {
		if err := m.enterBlock(fn, fn.entryBlk); err != nil {
			return 0, err
		}
	}
	code := fn.code
	code0 := unsafe.Pointer(&code[0])
	brs := fn.brs
	sws := fn.sws
	calls := fn.calls
	scalars, arrays := m.scalars, m.arrays
	rec, hook, swHook := m.rec, m.hook, m.swHook
	steps, branches := m.steps, m.branches
	predicted, mispredicted := m.predicted, m.mispredicted
	maxSteps, maxBranches := m.maxSteps, m.maxBranches
	if maxSteps == 0 {
		maxSteps = math.MaxUint64
	}
	if maxBranches == 0 {
		maxBranches = math.MaxUint64
	}
	pc := fn.entryPC

dispatch:
	for {
		in := (*instr)(unsafe.Add(code0, uintptr(uint32(pc))*unsafe.Sizeof(instr{})))
		var taken bool
		switch in.op {
		case vConst:
			regs[in.dst] = in.imm
			pc++
			continue dispatch
		case vMov:
			regs[in.dst] = regs[in.a]
			pc++
			continue dispatch
		case vAddI:
			regs[in.dst] = regs[in.a] + regs[in.b]
			pc++
			continue dispatch
		case vSubI:
			regs[in.dst] = regs[in.a] - regs[in.b]
			pc++
			continue dispatch
		case vMulI:
			regs[in.dst] = regs[in.a] * regs[in.b]
			pc++
			continue dispatch
		case vDivI:
			d := regs[in.b]
			if d == 0 {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, m.trap(fn, pc, "integer division by zero")
			}
			if d == -1 && regs[in.a] == math.MinInt64 {
				regs[in.dst] = math.MinInt64
			} else {
				regs[in.dst] = regs[in.a] / d
			}
			pc++
			continue dispatch
		case vModI:
			d := regs[in.b]
			if d == 0 {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, m.trap(fn, pc, "integer modulo by zero")
			}
			if d == -1 {
				regs[in.dst] = 0
			} else {
				regs[in.dst] = regs[in.a] % d
			}
			pc++
			continue dispatch
		case vAndI:
			regs[in.dst] = regs[in.a] & regs[in.b]
			pc++
			continue dispatch
		case vOrI:
			regs[in.dst] = regs[in.a] | regs[in.b]
			pc++
			continue dispatch
		case vXorI:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
			pc++
			continue dispatch
		case vShlI:
			regs[in.dst] = regs[in.a] << (uint64(regs[in.b]) & 63)
			pc++
			continue dispatch
		case vShrI:
			regs[in.dst] = regs[in.a] >> (uint64(regs[in.b]) & 63)
			pc++
			continue dispatch
		case vNegI:
			regs[in.dst] = -regs[in.a]
			pc++
			continue dispatch
		case vNotI:
			regs[in.dst] = b2i(regs[in.a] == 0)
			pc++
			continue dispatch
		case vAddF:
			regs[in.dst] = fbits(f64(regs[in.a]) + f64(regs[in.b]))
			pc++
			continue dispatch
		case vSubF:
			regs[in.dst] = fbits(f64(regs[in.a]) - f64(regs[in.b]))
			pc++
			continue dispatch
		case vMulF:
			regs[in.dst] = fbits(f64(regs[in.a]) * f64(regs[in.b]))
			pc++
			continue dispatch
		case vDivF:
			regs[in.dst] = fbits(f64(regs[in.a]) / f64(regs[in.b]))
			pc++
			continue dispatch
		case vNegF:
			regs[in.dst] = fbits(-f64(regs[in.a]))
			pc++
			continue dispatch
		case vEqI:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
			pc++
			continue dispatch
		case vNeI:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
			pc++
			continue dispatch
		case vLtI:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
			pc++
			continue dispatch
		case vLeI:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
			pc++
			continue dispatch
		case vGtI:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
			pc++
			continue dispatch
		case vGeI:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
			pc++
			continue dispatch
		case vEqF:
			regs[in.dst] = b2i(f64(regs[in.a]) == f64(regs[in.b]))
			pc++
			continue dispatch
		case vNeF:
			regs[in.dst] = b2i(f64(regs[in.a]) != f64(regs[in.b]))
			pc++
			continue dispatch
		case vLtF:
			regs[in.dst] = b2i(f64(regs[in.a]) < f64(regs[in.b]))
			pc++
			continue dispatch
		case vLeF:
			regs[in.dst] = b2i(f64(regs[in.a]) <= f64(regs[in.b]))
			pc++
			continue dispatch
		case vGtF:
			regs[in.dst] = b2i(f64(regs[in.a]) > f64(regs[in.b]))
			pc++
			continue dispatch
		case vGeF:
			regs[in.dst] = b2i(f64(regs[in.a]) >= f64(regs[in.b]))
			pc++
			continue dispatch
		case vItoF:
			regs[in.dst] = fbits(float64(regs[in.a]))
			pc++
			continue dispatch
		case vFtoI:
			v := f64(regs[in.a])
			if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, m.trap(fn, pc, "float to int conversion out of range")
			}
			regs[in.dst] = int64(v)
			pc++
			continue dispatch
		case vSqrtF:
			regs[in.dst] = fbits(math.Sqrt(f64(regs[in.a])))
			pc++
			continue dispatch
		case vAbsI:
			v := regs[in.a]
			if v < 0 {
				v = -v
			}
			regs[in.dst] = v
			pc++
			continue dispatch
		case vAbsF:
			regs[in.dst] = fbits(math.Abs(f64(regs[in.a])))
			pc++
			continue dispatch
		case vMinI:
			a, b := regs[in.a], regs[in.b]
			if b < a {
				a = b
			}
			regs[in.dst] = a
			pc++
			continue dispatch
		case vMaxI:
			a, b := regs[in.a], regs[in.b]
			if b > a {
				a = b
			}
			regs[in.dst] = a
			pc++
			continue dispatch
		case vMinF:
			regs[in.dst] = fbits(math.Min(f64(regs[in.a]), f64(regs[in.b])))
			pc++
			continue dispatch
		case vMaxF:
			regs[in.dst] = fbits(math.Max(f64(regs[in.a]), f64(regs[in.b])))
			pc++
			continue dispatch
		case vLoadG:
			regs[in.dst] = scalars[in.imm]
			pc++
			continue dispatch
		case vStoreG:
			scalars[in.imm] = regs[in.a]
			pc++
			continue dispatch
		case vIncG:
			scalars[in.a] += in.imm
			pc++
			continue dispatch
		case vLoadElem:
			arr := arrays[in.imm]
			idx := regs[in.a]
			if idx < 0 || idx >= int64(len(arr)) {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, m.trap(fn, pc, fmt.Sprintf("index %d out of range [0,%d) in %s",
					idx, len(arr), m.prog.ir.Globals[m.prog.arrGID[in.imm]].Name))
			}
			regs[in.dst] = arr[idx]
			pc++
			continue dispatch
		case vStoreElem:
			arr := arrays[in.imm]
			idx := regs[in.a]
			if idx < 0 || idx >= int64(len(arr)) {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, m.trap(fn, pc, fmt.Sprintf("index %d out of range [0,%d) in %s",
					idx, len(arr), m.prog.ir.Globals[m.prog.arrGID[in.imm]].Name))
			}
			arr[idx] = regs[in.b]
			pc++
			continue dispatch
		case vCall:
			ci := &calls[in.imm]
			callee := ci.fn
			frame := m.getFrame(callee.nSlots)
			for ai, as := range ci.args {
				frame[ai] = regs[as]
			}
			m.flushCounters(steps, branches, predicted, mispredicted)
			ret, err := m.exec(callee, frame, depth+1)
			m.putFrame(frame)
			if err != nil {
				// The callee flushed its own (more recent) counters.
				return 0, err
			}
			steps, branches = m.steps, m.branches
			predicted, mispredicted = m.predicted, m.mispredicted
			if in.dst >= 0 {
				regs[in.dst] = ret
			}
			pc++
			continue dispatch
		case vPrint:
			m.checksum = m.checksum*1099511628211 + uint64(regs[in.a])
			m.prints++
			pc++
			continue dispatch
		case vAddIK:
			regs[in.dst] = regs[in.a] + in.imm
			pc++
			continue dispatch
		case vSubIK:
			regs[in.dst] = regs[in.a] - in.imm
			pc++
			continue dispatch
		case vMulIK:
			regs[in.dst] = regs[in.a] * in.imm
			pc++
			continue dispatch
		case vEqIK:
			regs[in.dst] = b2i(regs[in.a] == in.imm)
			pc++
			continue dispatch
		case vNeIK:
			regs[in.dst] = b2i(regs[in.a] != in.imm)
			pc++
			continue dispatch
		case vLtIK:
			regs[in.dst] = b2i(regs[in.a] < in.imm)
			pc++
			continue dispatch
		case vLeIK:
			regs[in.dst] = b2i(regs[in.a] <= in.imm)
			pc++
			continue dispatch
		case vGtIK:
			regs[in.dst] = b2i(regs[in.a] > in.imm)
			pc++
			continue dispatch
		case vGeIK:
			regs[in.dst] = b2i(regs[in.a] >= in.imm)
			pc++
			continue dispatch
		case vMovJ0:
			regs[in.dst] = regs[in.a]
			pc = int32(in.b)
			continue dispatch
		case vJmp:
			if in.imm != 0 {
				steps += uint64(in.imm)
				if steps >= maxSteps {
					m.flushCounters(steps, branches, predicted, mispredicted)
					return 0, interp.ErrLimit
				}
			}
			pc = int32(in.dst)
			if m.slow {
				if err := m.enterBlock(fn, int32(in.a)); err != nil {
					m.flushCounters(steps, branches, predicted, mispredicted)
					return 0, err
				}
			}
			continue dispatch
		case vRet:
			steps += uint64(in.imm)
			m.flushCounters(steps, branches, predicted, mispredicted)
			if steps >= maxSteps {
				return 0, interp.ErrLimit
			}
			if in.a >= 0 {
				return regs[in.a], nil
			}
			return 0, nil
		case vSwitch:
			// Mirrors the interpreter's TermSwitch path statement for
			// statement: weight, outcome, branch count, PredIdx scoring,
			// switch trace event, hook, budget check, dispatch.
			si := &sws[in.dst]
			steps += si.weight
			if steps >= maxSteps {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, interp.ErrLimit
			}
			t := si.term
			v := regs[in.a]
			outcome := int32(len(t.Targets))
			if v >= 0 && v < int64(len(t.Targets)) {
				outcome = int32(v)
			}
			branches++
			if t.Pred != ir.PredNone {
				predicted++
				if t.PredIdx != outcome {
					mispredicted++
				}
			}
			if rec != nil {
				rec.RecordSwitch(t.Site, outcome)
			}
			if swHook != nil {
				swHook(t, outcome)
			}
			if branches >= maxBranches {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, interp.ErrLimit
			}
			pc = si.pcs[outcome]
			if m.slow {
				if err := m.enterBlock(fn, si.blks[outcome]); err != nil {
					m.flushCounters(steps, branches, predicted, mispredicted)
					return 0, err
				}
			}
			continue dispatch
		case vBr:
			taken = regs[in.a] != 0
		case vBrEqI:
			taken = regs[in.a] == regs[in.b]
		case vBrNeI:
			taken = regs[in.a] != regs[in.b]
		case vBrLtI:
			taken = regs[in.a] < regs[in.b]
		case vBrLeI:
			taken = regs[in.a] <= regs[in.b]
		case vBrGtI:
			taken = regs[in.a] > regs[in.b]
		case vBrGeI:
			taken = regs[in.a] >= regs[in.b]
		case vBrEqF:
			taken = f64(regs[in.a]) == f64(regs[in.b])
		case vBrNeF:
			taken = f64(regs[in.a]) != f64(regs[in.b])
		case vBrLtF:
			taken = f64(regs[in.a]) < f64(regs[in.b])
		case vBrLeF:
			taken = f64(regs[in.a]) <= f64(regs[in.b])
		case vBrGtF:
			taken = f64(regs[in.a]) > f64(regs[in.b])
		case vBrGeF:
			taken = f64(regs[in.a]) >= f64(regs[in.b])
		case vBrEqIK:
			taken = regs[in.a] == in.imm
		case vBrNeIK:
			taken = regs[in.a] != in.imm
		case vBrLtIK:
			taken = regs[in.a] < in.imm
		case vBrLeIK:
			taken = regs[in.a] <= in.imm
		case vBrGtIK:
			taken = regs[in.a] > in.imm
		case vBrGeIK:
			taken = regs[in.a] >= in.imm
		default:
			m.flushCounters(steps, branches, predicted, mispredicted)
			return 0, m.trap(fn, pc, "invalid opcode")
		}

		// Shared branch tail, mirroring the interpreter's TermBr path.
		bi := &brs[in.dst]
		steps += bi.weight
		if steps >= maxSteps {
			m.flushCounters(steps, branches, predicted, mispredicted)
			return 0, interp.ErrLimit
		}
		t := bi.term
		branches++
		if t.Pred != ir.PredNone {
			predicted++
			if (t.Pred == ir.PredTaken) != taken {
				mispredicted++
			}
		}
		if t.SwTest {
			// A clustering test is trace-invisible except that its taken
			// edge emits the governed switch's event, keeping clustered
			// traces byte-identical to their originals.
			if taken {
				if rec != nil {
					rec.RecordSwitch(t.Site, t.SwOutcome)
				}
				if swHook != nil {
					swHook(t, t.SwOutcome)
				}
			}
		} else {
			if rec != nil {
				rec.Record(t.Site, taken)
			}
			if hook != nil {
				hook(t, taken)
			}
		}
		if branches >= maxBranches {
			m.flushCounters(steps, branches, predicted, mispredicted)
			return 0, interp.ErrLimit
		}
		var blk int32
		if taken {
			pc, blk = bi.thenPC, bi.thenBlk
		} else {
			pc, blk = bi.elsePC, bi.elseBlk
		}
		if m.slow {
			if err := m.enterBlock(fn, blk); err != nil {
				m.flushCounters(steps, branches, predicted, mispredicted)
				return 0, err
			}
		}
	}
}
