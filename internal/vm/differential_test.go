package vm_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
	"repro/internal/trace"
	"repro/internal/vm"
)

// runBoth executes prog on the interpreter and on the compiled backend
// under identical limits and fails unless every observable matches: return
// value, error identity, all six counters, the encoded branch trace, and
// the per-block execution counts.
func runBoth(t *testing.T, prog *ir.Program, maxBranches, maxSteps uint64) {
	t.Helper()

	im := interp.New(prog)
	im.MaxBranches = maxBranches
	im.MaxSteps = maxSteps
	im.EnableBlockCounts()
	is := trace.NewSlab(0)
	im.Rec = is
	iret, ierr := im.Run()
	is.Seal()

	vp, err := vm.Compile(prog)
	if err != nil {
		t.Fatalf("vm.Compile: %v", err)
	}
	vmach := vp.NewMachine()
	vmach.SetMaxBranches(maxBranches)
	vmach.SetMaxSteps(maxSteps)
	vmach.EnableBlockCounts()
	vs := trace.NewSlab(0)
	vmach.SetRec(vs)
	vret, verr := vmach.Run()
	vs.Seal()

	if (ierr == nil) != (verr == nil) {
		t.Fatalf("error mismatch: interp=%v vm=%v", ierr, verr)
	}
	if ierr != nil {
		sentinel := false
		for _, s := range []error{interp.ErrLimit, interp.ErrNoMain, interp.ErrMainParams} {
			if errors.Is(ierr, s) != errors.Is(verr, s) {
				t.Fatalf("error identity mismatch on %v: interp=%v vm=%v", s, ierr, verr)
			}
			sentinel = sentinel || errors.Is(ierr, s)
		}
		if !sentinel && ierr.Error() != verr.Error() {
			t.Fatalf("trap mismatch:\ninterp: %v\nvm:     %v", ierr, verr)
		}
	} else if iret != vret {
		t.Fatalf("return mismatch: interp=%d vm=%d", iret, vret)
	}

	vc := vmach.Counters()
	if im.Steps != vc.Steps {
		t.Errorf("steps: interp=%d vm=%d", im.Steps, vc.Steps)
	}
	if im.Branches != vc.Branches {
		t.Errorf("branches: interp=%d vm=%d", im.Branches, vc.Branches)
	}
	if im.Predicted != vc.Predicted {
		t.Errorf("predicted: interp=%d vm=%d", im.Predicted, vc.Predicted)
	}
	if im.Mispredicted != vc.Mispredicted {
		t.Errorf("mispredicted: interp=%d vm=%d", im.Mispredicted, vc.Mispredicted)
	}
	if im.Checksum != vc.Checksum {
		t.Errorf("checksum: interp=%#x vm=%#x", im.Checksum, vc.Checksum)
	}
	if im.Prints != vc.Prints {
		t.Errorf("prints: interp=%d vm=%d", im.Prints, vc.Prints)
	}

	var ibuf, vbuf bytes.Buffer
	if _, err := is.WriteTo(&ibuf); err != nil {
		t.Fatalf("interp slab: %v", err)
	}
	if _, err := vs.WriteTo(&vbuf); err != nil {
		t.Fatalf("vm slab: %v", err)
	}
	if !bytes.Equal(ibuf.Bytes(), vbuf.Bytes()) {
		t.Errorf("trace bytes differ: interp=%d bytes (%d events), vm=%d bytes (%d events)",
			ibuf.Len(), is.Len(), vbuf.Len(), vs.Len())
	}

	ib, vb := im.BlockCounts(), vmach.BlockCounts()
	if len(ib) != len(vb) {
		t.Fatalf("block count shape: interp=%d funcs vm=%d funcs", len(ib), len(vb))
	}
	for fi := range ib {
		if len(ib[fi]) != len(vb[fi]) {
			t.Errorf("func %d block count shape: interp=%d vm=%d", fi, len(ib[fi]), len(vb[fi]))
			continue
		}
		for bi := range ib[fi] {
			if ib[fi][bi] != vb[fi][bi] {
				t.Errorf("func %d block %d count: interp=%d vm=%d", fi, bi, ib[fi][bi], vb[fi][bi])
			}
		}
	}
}

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("lang.Compile: %v", err)
	}
	prog.NumberBranches(true)
	return prog
}

// TestBackendEquivalenceProgen drives both backends over generated
// programs: 64 seeds of the default shape plus 16 larger ones, full runs
// and truncated (branch-budget) runs.
func TestBackendEquivalenceProgen(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		prog := compileSrc(t, progen.Generate(seed, progen.DefaultConfig()))
		runBoth(t, prog, 0, 5_000_000)
		runBoth(t, prog, 100, 5_000_000)
	}
	big := progen.Config{MaxFuncs: 6, MaxStmtsPerBlock: 8, MaxDepth: 5, MaxLoopTrip: 16, Arrays: 3}
	for seed := int64(1000); seed < 1016; seed++ {
		prog := compileSrc(t, progen.Generate(seed, big))
		runBoth(t, prog, 0, 5_000_000)
		runBoth(t, prog, 5000, 5_000_000)
	}
}

// TestBackendEquivalenceWorkloads runs every catalog workload on both
// backends under the standard budget.
func TestBackendEquivalenceWorkloads(t *testing.T) {
	for _, w := range bench.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := bench.Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			runBoth(t, c.Prog, 200_000, 0)
		})
	}
}

// TestBackendEquivalenceExamples covers the hand-written example programs.
func TestBackendEquivalenceExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "bl", "*.bl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog := compileSrc(t, string(src))
			runBoth(t, prog, 0, 5_000_000)
		})
	}
}

// FuzzBackendEquivalence is the differential fuzzer: any BL program the
// frontend accepts must behave identically on both backends under any
// branch budget. Seeds are the example programs, the catalog workloads,
// and a spread of generated programs.
func FuzzBackendEquivalence(f *testing.F) {
	if files, _ := filepath.Glob(filepath.Join("..", "..", "examples", "bl", "*.bl")); files != nil {
		for _, path := range files {
			if src, err := os.ReadFile(path); err == nil {
				f.Add(string(src), uint64(0))
				f.Add(string(src), uint64(37))
			}
		}
	}
	for _, w := range bench.Workloads() {
		f.Add(w.Source, uint64(10_000))
	}
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(progen.Generate(seed, progen.DefaultConfig()), uint64(0))
	}
	f.Fuzz(func(t *testing.T, src string, budget uint64) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := lang.Compile(src)
		if err != nil {
			t.Skip() // invalid program: nothing to compare
		}
		prog.NumberBranches(true)
		runBoth(t, prog, budget, 2_000_000)
	})
}
