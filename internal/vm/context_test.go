package vm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/vm"
)

// These tests mirror internal/interp/context_test.go on the compiled
// backend: the vm must honour cancellation with the interpreter's polling
// cadence (every CtxCheckEvery original blocks) and keep the nil-context
// fast path limit behaviour identical. CI runs them under -race alongside
// the interpreter's.

// loopSrc spins essentially forever: ~2^62 iterations of a two-block loop.
const loopSrc = `
var total int;

func main() int {
    for var i int = 0; i < 4611686018427387904; i = i + 1 {
        total = total + i;
    }
    return total;
}`

func compileVM(t *testing.T, src string) *vm.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	p, err := vm.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVMContextCancelStopsRun proves the service-facing guarantee on the
// compiled backend: a cancelled context stops a long run promptly instead
// of pinning the goroutine until a step budget runs out.
func TestVMContextCancelStopsRun(t *testing.T) {
	m := compileVM(t, loopSrc).NewMachine()
	ctx, cancel := context.WithCancel(context.Background())
	m.SetContext(ctx, 0)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not stop within 5s")
	}
}

// TestVMContextDeadline checks the deadline flavour used by the HTTP
// layer's request timeouts, with the service's tighter polling cadence.
func TestVMContextDeadline(t *testing.T) {
	m := compileVM(t, loopSrc).NewMachine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	m.SetContext(ctx, 512)
	start := time.Now()
	if _, err := m.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to land", elapsed)
	}
}

// TestVMNilContextUnaffected pins the fast path: without a context the
// machine runs to its limits exactly as before.
func TestVMNilContextUnaffected(t *testing.T) {
	m := compileVM(t, loopSrc).NewMachine()
	m.SetMaxSteps(10_000)
	if _, err := m.Run(); !errors.Is(err, interp.ErrLimit) {
		t.Fatalf("Run returned %v, want ErrLimit", err)
	}
}

// TestVMContextErrorParity runs the same cancelled execution on both
// backends and compares the step counts at the stop point: the vm polls on
// the same original-block cadence, so with an already-cancelled context
// both machines must stop at the same place with equivalent errors.
func TestVMContextErrorParity(t *testing.T) {
	prog, err := lang.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: both must stop at the first poll

	im := interp.New(prog)
	im.Ctx = ctx
	im.CtxCheckEvery = 256
	_, ierr := im.Run()

	vp, err := vm.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	vmach := vp.NewMachine()
	vmach.SetContext(ctx, 256)
	_, verr := vmach.Run()

	if !errors.Is(ierr, context.Canceled) || !errors.Is(verr, context.Canceled) {
		t.Fatalf("errors: interp=%v vm=%v, want context.Canceled on both", ierr, verr)
	}
	vc := vmach.Counters()
	if im.Steps != vc.Steps || im.Branches != vc.Branches {
		t.Fatalf("stop point differs: interp steps=%d branches=%d, vm steps=%d branches=%d",
			im.Steps, im.Branches, vc.Steps, vc.Branches)
	}
}
