// Package results defines the krallbench-results/v1 document: the
// machine-readable output of a krallbench sweep, extended by the service
// throughput harness (krallload -throughput) with a "service" section.
// Three consumers share it — cmd/krallbench writes it, cmd/krallload
// merges the service section into an existing file, and the
// bench-regression gate (krallbench -compare) reads two of them and
// refuses throughput drops — so the schema lives here rather than in any
// one command.
package results

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the document format.
const Schema = "krallbench-results/v1"

// Document is one benchmark run: configuration, end-to-end timing, the
// experiment engine's counters, per-section timings, and (when the
// throughput harness has run) the service section.
type Document struct {
	Schema string `json:"schema"`
	Budget uint64 `json:"budget"`
	Quick  bool   `json:"quick"`
	// Workers is the experiment engine's pool width for the sweep.
	Workers int `json:"workers"`
	// TotalSeconds is end-to-end wall clock; BranchesPerSecond is the
	// trace-event throughput (recorded + replayed events over wall clock).
	TotalSeconds      float64   `json:"total_seconds"`
	BranchesPerSecond float64   `json:"branches_per_second"`
	Engine            Engine    `json:"engine"`
	Experiments       []Section `json:"experiments"`
	// Service holds the kralld throughput measurement; absent until
	// krallload -throughput -benchjson has merged one in.
	Service *Service `json:"service,omitempty"`
	// Exec holds the execution-backend comparison (interpreter vs the
	// compiled vm); absent until krallbench -execbench has run.
	Exec *Exec `json:"exec,omitempty"`
	// Trace holds the trace-plane replay throughput; absent until
	// krallbench -tracebench has run.
	Trace *Trace `json:"trace,omitempty"`
}

// Engine mirrors runner.Stats in JSON form.
type Engine struct {
	Jobs           int64   `json:"jobs"`
	JobSeconds     float64 `json:"job_seconds"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	TraceRecords   int64   `json:"trace_records"`
	RecordedEvents int64   `json:"recorded_events"`
	Replays        int64   `json:"replays"`
	ReplayedEvents int64   `json:"replayed_events"`
	LiveRuns       int64   `json:"live_runs"`
}

// Section is one experiment section's timing.
type Section struct {
	ID              string  `json:"id"`
	TraceSufficient bool    `json:"trace_sufficient"`
	Seconds         float64 `json:"seconds"`
}

// Service is the kralld throughput section: the same request mix served
// one sub-request per HTTP POST (Single) and batched through /v1/batch
// (Batch), with the requests/sec ratio between the two.
type Service struct {
	Workloads   []string `json:"workloads"`
	Budget      uint64   `json:"budget"`
	Concurrency int      `json:"concurrency"`
	// Rounds is how many times each phase ran; the phases report their
	// best round, damping scheduler and GC noise.
	Rounds int   `json:"rounds"`
	Single Phase `json:"single"`
	Batch  Phase `json:"batch"`
	// Speedup is Batch.RequestsPerSecond / Single.RequestsPerSecond.
	Speedup float64 `json:"speedup"`
	// Cluster holds the multi-node scaling measurement; absent until
	// krallload -throughput -nodes N has merged one in.
	Cluster *Cluster `json:"cluster,omitempty"`
}

// Cluster is the multi-node scaling section: the same ring-routed
// request mix served by one rate-capped kralld process and then by
// Nodes of them, with the aggregate requests/sec ratio. Every node
// carries the same PerNodeMaxRPS admission cap, so cluster capacity is
// capacity partitioning (nodes × cap) rather than a race for the same
// cores — which is what makes the scaling number meaningful on a small
// CI host.
type Cluster struct {
	Nodes         int     `json:"nodes"`
	PerNodeMaxRPS float64 `json:"per_node_max_rps"`
	SingleNode    Phase   `json:"single_node"`
	MultiNode     Phase   `json:"multi_node"`
	// Scaling is MultiNode.RequestsPerSecond / SingleNode.RequestsPerSecond.
	Scaling float64 `json:"scaling"`
}

// EndpointLatency is one endpoint's client-observed request latency
// percentiles within a phase ("batch" covers whole /v1/batch posts).
type EndpointLatency struct {
	Endpoint  string  `json:"endpoint"`
	P50Millis float64 `json:"p50_millis"`
	P99Millis float64 `json:"p99_millis"`
}

// Phase is one throughput measurement: N sub-requests served at a given
// batch size.
type Phase struct {
	BatchSize int `json:"batch_size"`
	// HTTPPosts is the number of HTTP round trips; Requests the pipeline
	// sub-requests they carried (equal when BatchSize is 1).
	HTTPPosts int `json:"http_posts"`
	Requests  int `json:"requests"`
	// Branches sums the "events" field of every sub-response: the branch
	// events the service accounted for while answering.
	Branches          uint64  `json:"branches"`
	Seconds           float64 `json:"seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	BranchesPerSecond float64 `json:"branches_per_second"`
	// Latency is the per-endpoint client-observed p50/p99, sorted by
	// endpoint name.
	Latency []EndpointLatency `json:"latency,omitempty"`
}

// Exec is the execution-backend throughput section: identical budgeted
// live runs timed on the reference interpreter and on the compiled
// bytecode vm (best of Rounds rounds each, no collectors attached).
type Exec struct {
	Budget uint64 `json:"budget"`
	Rounds int    `json:"rounds"`
	// The aggregate rates are total branches over total best-round time
	// across all workloads; Speedup is vm over interpreter.
	InterpBranchesPerSecond float64        `json:"interp_branches_per_second"`
	VMBranchesPerSecond     float64        `json:"vm_branches_per_second"`
	Speedup                 float64        `json:"speedup"`
	Workloads               []ExecWorkload `json:"workloads"`
}

// ExecWorkload is one workload's backend comparison.
type ExecWorkload struct {
	Name                    string  `json:"name"`
	InterpBranchesPerSecond float64 `json:"interp_branches_per_second"`
	VMBranchesPerSecond     float64 `json:"vm_branches_per_second"`
	Speedup                 float64 `json:"speedup"`
}

// Trace is the trace-plane replay throughput section: the same recorded
// slabs decoded event-at-a-time (the historical baseline), through the
// fused run-aware pass, partitioned across Workers goroutines, and into
// the full profile bundle (best of Rounds rounds each). The aggregate
// rates are total events over total best-round time across all workloads.
type Trace struct {
	Budget  uint64 `json:"budget"`
	Rounds  int    `json:"rounds"`
	Workers int    `json:"workers"`

	SinglePassEventsPerSecond  float64         `json:"single_pass_events_per_second"`
	RunAwareEventsPerSecond    float64         `json:"run_aware_events_per_second"`
	PartitionedEventsPerSecond float64         `json:"partitioned_events_per_second"`
	ProfileEventsPerSecond     float64         `json:"profile_events_per_second"`
	Speedup                    float64         `json:"speedup"`
	Workloads                  []TraceWorkload `json:"workloads"`
}

// TraceWorkload is one workload's replay throughput comparison.
type TraceWorkload struct {
	Name                       string  `json:"name"`
	Events                     uint64  `json:"events"`
	EncodedBytes               int     `json:"encoded_bytes"`
	SinglePassEventsPerSecond  float64 `json:"single_pass_events_per_second"`
	RunAwareEventsPerSecond    float64 `json:"run_aware_events_per_second"`
	PartitionedEventsPerSecond float64 `json:"partitioned_events_per_second"`
	ProfileEventsPerSecond     float64 `json:"profile_events_per_second"`
	Speedup                    float64 `json:"speedup"`
}

// Read loads and validates a document.
func Read(path string) (*Document, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, Schema)
	}
	return &doc, nil
}

// Write marshals the document with stable indentation and a trailing
// newline, the format committed as BENCH_results.json.
func Write(path string, doc *Document) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
