package profile

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file makes the profile bundle serializable so the service's disk
// tier can persist it across restarts. The history types keep their
// mutable state unexported (the collectors are hot-path code and the
// fields are invariants, not API), so each gets an explicit gob wire
// mirror with exported fields. Decoding reconstructs every derived field
// (masks, memo caches) rather than trusting the wire, so a decoded bundle
// behaves identically to a freshly collected one.

type localWire struct {
	K     int
	Hist  []uint32
	Seen  []uint32
	Tabs  [][]Pair
	Total uint64
}

// GobEncode implements gob.GobEncoder.
func (h *LocalHistory) GobEncode() ([]byte, error) {
	return encodeWire(localWire{K: h.K, Hist: h.hist, Seen: h.seen, Tabs: h.tabs, Total: h.total})
}

// GobDecode implements gob.GobDecoder.
func (h *LocalHistory) GobDecode(data []byte) error {
	var w localWire
	if err := decodeWire(data, &w); err != nil {
		return err
	}
	if w.K < 1 || w.K > 16 {
		return fmt.Errorf("profile: decoded local history length %d out of range", w.K)
	}
	*h = LocalHistory{K: w.K, hist: w.Hist, seen: w.Seen, tabs: w.Tabs, mask: (1 << uint(w.K)) - 1, total: w.Total}
	return nil
}

type globalWire struct {
	K     int
	GHR   uint32
	Seen  uint32
	Tabs  [][]Pair
	Total uint64
}

// GobEncode implements gob.GobEncoder.
func (h *GlobalHistory) GobEncode() ([]byte, error) {
	return encodeWire(globalWire{K: h.K, GHR: h.ghr, Seen: h.seen, Tabs: h.tabs, Total: h.total})
}

// GobDecode implements gob.GobDecoder.
func (h *GlobalHistory) GobDecode(data []byte) error {
	var w globalWire
	if err := decodeWire(data, &w); err != nil {
		return err
	}
	if w.K < 1 || w.K > 16 {
		return fmt.Errorf("profile: decoded global history length %d out of range", w.K)
	}
	*h = GlobalHistory{K: w.K, ghr: w.GHR, seen: w.Seen, tabs: w.Tabs, mask: (1 << uint(w.K)) - 1, total: w.Total}
	return nil
}

type pathWire struct {
	M     int
	Key   PathKey
	Seen  uint32
	Tabs  []map[PathKey]Pair
	Total uint64
}

// GobEncode implements gob.GobEncoder. Pairs are flattened out of their
// pointers; gob map ordering is nondeterministic but decode rebuilds the
// same logical table either way.
func (h *PathHistory) GobEncode() ([]byte, error) {
	w := pathWire{M: h.M, Key: h.key, Seen: h.seen, Total: h.total}
	w.Tabs = make([]map[PathKey]Pair, len(h.tabs))
	for s, tab := range h.tabs {
		if tab == nil {
			continue
		}
		m := make(map[PathKey]Pair, len(tab))
		for k, p := range tab {
			m[k] = *p
		}
		w.Tabs[s] = m
	}
	return encodeWire(w)
}

// GobDecode implements gob.GobDecoder. The per-site memo caches are
// reallocated empty; they are pure caches and refill on use.
func (h *PathHistory) GobDecode(data []byte) error {
	var w pathWire
	if err := decodeWire(data, &w); err != nil {
		return err
	}
	if w.M < 1 || w.M > 4 {
		return fmt.Errorf("profile: decoded path length %d out of range", w.M)
	}
	tabs := make([]map[PathKey]*Pair, len(w.Tabs))
	for s, m := range w.Tabs {
		if m == nil {
			continue
		}
		tab := make(map[PathKey]*Pair, len(m))
		for k, p := range m {
			q := p
			tab[k] = &q
		}
		tabs[s] = tab
	}
	*h = PathHistory{
		M: w.M, key: w.Key, seen: w.Seen, tabs: tabs, total: w.Total,
		memoKey: make([]PathKey, len(tabs)),
		memoP:   make([]*Pair, len(tabs)),
	}
	return nil
}

type streamWire struct {
	Words []uint64
	N     int
}

// GobEncode implements gob.GobEncoder.
func (s *Stream) GobEncode() ([]byte, error) {
	return encodeWire(streamWire{Words: s.words, N: s.n})
}

// GobDecode implements gob.GobDecoder.
func (s *Stream) GobDecode(data []byte) error {
	var w streamWire
	if err := decodeWire(data, &w); err != nil {
		return err
	}
	if w.N < 0 || (w.N > 0 && (w.N+63)/64 > len(w.Words)) {
		return fmt.Errorf("profile: decoded stream length %d does not fit %d words", w.N, len(w.Words))
	}
	*s = Stream{words: w.Words, n: w.N}
	return nil
}

type streamsWire struct {
	Sites []Stream
	Total uint64
}

// GobEncode implements gob.GobEncoder.
func (c *Streams) GobEncode() ([]byte, error) {
	return encodeWire(streamsWire{Sites: c.sites, Total: c.total})
}

// GobDecode implements gob.GobDecoder.
func (c *Streams) GobDecode(data []byte) error {
	var w streamsWire
	if err := decodeWire(data, &w); err != nil {
		return err
	}
	*c = Streams{sites: w.Sites, total: w.Total}
	return nil
}

func encodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWire(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
