package profile

import (
	"strings"
	"testing"
)

func TestPairAndKeyStrings(t *testing.T) {
	p := Pair{Taken: 3, NotTaken: 1}
	if p.String() != "3/1" {
		t.Fatalf("pair string %q", p.String())
	}
	var k PathKey
	k = k<<16 | PathKey(pathElem(2, true))
	k = k<<16 | PathKey(pathElem(5, false))
	s := k.String()
	if !strings.Contains(s, "b5:N") || !strings.Contains(s, "b2:T") {
		t.Fatalf("path key string %q", s)
	}
}

func TestNumSitesAccessors(t *testing.T) {
	if NewLocalHistory(7, 2).NumSites() != 7 {
		t.Fatal("local NumSites")
	}
	if NewGlobalHistory(5, 2).NumSites() != 5 {
		t.Fatal("global NumSites")
	}
	if NewPathHistory(3, 2).NumSites() != 3 {
		t.Fatal("path NumSites")
	}
	if NewStreams(4).NumSites() != 4 {
		t.Fatal("streams NumSites")
	}
}

func TestStreams(t *testing.T) {
	st := NewStreams(2)
	outcomes := []bool{true, false, false, true, true}
	for _, o := range outcomes {
		st.Branch(term(1), o)
	}
	st.Branch(term(0), true)
	if st.Total() != 6 {
		t.Fatalf("total = %d", st.Total())
	}
	s1 := st.Site(1)
	if s1.Len() != len(outcomes) {
		t.Fatalf("len = %d", s1.Len())
	}
	for i, o := range outcomes {
		if s1.Get(i) != o {
			t.Fatalf("bit %d = %v, want %v", i, s1.Get(i), o)
		}
	}
	if st.Site(0).Len() != 1 || !st.Site(0).Get(0) {
		t.Fatal("site 0 stream wrong")
	}
}

func TestStreamCrossesWordBoundary(t *testing.T) {
	var s Stream
	for i := 0; i < 200; i++ {
		s.Append(i%3 == 0)
	}
	if s.Len() != 200 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 200; i++ {
		if s.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestGlobalProjectAndFillRates(t *testing.T) {
	h := NewGlobalHistory(2, 3)
	t0, t1 := term(0), term(1)
	seq := []bool{true, false, true, true, false, true, false, false, true, true}
	for _, o := range seq {
		h.Branch(t0, o)
		h.Branch(t1, !o)
	}
	proj := h.Project(0, 2)
	var tot uint64
	for _, p := range proj {
		tot += p.Total()
	}
	m, total := h.SiteMisses(0)
	if tot != total {
		t.Fatalf("projection total %d != site total %d", tot, total)
	}
	if m > total {
		t.Fatal("misses > total")
	}
	frs := h.FillRates()
	if len(frs) != 3 {
		t.Fatalf("fill rates = %d", len(frs))
	}
	for i := 1; i < len(frs); i++ {
		if frs[i].Rate() > frs[i-1].Rate()+1e-9 {
			t.Fatal("global fill rate must not grow with history length")
		}
	}
	var zero FillRate
	if zero.Rate() != 0 {
		t.Fatal("empty fill rate must be 0")
	}
}

func TestHistoryValidationPanics(t *testing.T) {
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("want panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewGlobalHistory(1, 0) })
	mustPanic(func() { NewGlobalHistory(1, 17) })
	mustPanic(func() { NewPathHistory(1, 0) })
	mustPanic(func() { NewPathHistory(1, 5) })
	mustPanic(func() { NewLocalHistory(1, 17) })
	h := NewLocalHistory(1, 3)
	feed(h, 0, "11111")
	mustPanic(func() { h.Project(0, 4) })
	mustPanic(func() { h.Project(0, 0) })
	ph := NewPathHistory(1, 2)
	ph.Branch(term(0), true)
	mustPanic(func() { ph.ProjectPaths(0, 3) })
}

func TestPathElemOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for oversized site id")
		}
	}()
	h := NewPathHistory(1, 2)
	h.Branch(term(1<<15), true)
}
