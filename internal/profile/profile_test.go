package profile

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func term(site int32) *ir.Term {
	return &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
}

func feed(c interface {
	Branch(*ir.Term, bool)
}, site int32, outcomes string) {
	t := term(site)
	for _, ch := range outcomes {
		c.Branch(t, ch == '1')
	}
}

func TestPairBasics(t *testing.T) {
	var p Pair
	p.Add(true)
	p.Add(true)
	p.Add(false)
	if p.Total() != 3 || !p.MajorityTaken() || p.Hits() != 2 || p.Misses() != 1 {
		t.Fatalf("pair = %+v", p)
	}
	// Tie predicts not-taken.
	q := Pair{Taken: 5, NotTaken: 5}
	if q.MajorityTaken() {
		t.Fatal("tie must predict not-taken")
	}
	if q.Hits() != 5 || q.Misses() != 5 {
		t.Fatal("tie hits/misses wrong")
	}
}

func TestLocalHistoryAlternating(t *testing.T) {
	h := NewLocalHistory(1, 1)
	// Alternating outcomes: after 1-bit warm-up, pattern 0 is always
	// followed by taken and pattern 1 by not-taken.
	feed(h, 0, "0101010101")
	tab := h.Table(0)
	if tab == nil {
		t.Fatal("no table")
	}
	// pattern 0 (last not taken) → next taken
	if tab[0].NotTaken != 0 || tab[0].Taken == 0 {
		t.Fatalf("pattern 0: %+v", tab[0])
	}
	if tab[1].Taken != 0 || tab[1].NotTaken == 0 {
		t.Fatalf("pattern 1: %+v", tab[1])
	}
	misses, total := h.SiteMisses(0)
	if misses != 0 {
		t.Fatalf("alternating branch with 1-bit history: misses = %d (total %d)", misses, total)
	}
	if h.Recorded() != 9 {
		t.Fatalf("recorded = %d, want 9 (one warm-up)", h.Recorded())
	}
}

func TestLocalHistoryWarmup(t *testing.T) {
	h := NewLocalHistory(1, 3)
	feed(h, 0, "11")
	if h.Recorded() != 0 {
		t.Fatal("events during warm-up must not be recorded")
	}
	if h.Table(0) != nil {
		t.Fatal("table allocated during warm-up")
	}
	feed(h, 0, "111")
	if h.Recorded() != 2 {
		t.Fatalf("recorded = %d, want 2", h.Recorded())
	}
}

func TestLocalHistoryPatternOrder(t *testing.T) {
	h := NewLocalHistory(1, 2)
	// Outcomes: 1 0 then record next under pattern (prev<<1|last) = 0b10.
	feed(h, 0, "101")
	tab := h.Table(0)
	if tab[0b01].Taken != 1 { // history "10": older bit 1 at position1, recent 0 at bit0 → 0b10?
		// Bit 0 is most recent: history after "1,0" is (1<<1|0)=0b10.
		if tab[0b10].Taken != 1 {
			t.Fatalf("table: %+v", tab)
		}
	}
}

func TestProjectConservesCounts(t *testing.T) {
	check := func(seed uint32, n uint8) bool {
		h := NewLocalHistory(1, 4)
		x := seed
		tm := term(0)
		for i := 0; i < int(n)+20; i++ {
			x = x*1664525 + 1013904223
			h.Branch(tm, x&0x10000 != 0)
		}
		full := h.Table(0)
		var fullTotal uint64
		for _, p := range full {
			fullTotal += p.Total()
		}
		for j := 1; j <= 4; j++ {
			proj := h.Project(0, j)
			var tot uint64
			for _, p := range proj {
				tot += p.Total()
			}
			if tot != fullTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalHistoryCorrelation(t *testing.T) {
	// Branch 1 always repeats branch 0's last outcome. With a 1-bit global
	// history, branch 1 is perfectly predictable.
	h := NewGlobalHistory(2, 1)
	t0, t1 := term(0), term(1)
	pattern := []bool{true, false, false, true, true, true, false}
	for _, o := range pattern {
		h.Branch(t0, o)
		h.Branch(t1, o)
	}
	misses, total := h.SiteMisses(1)
	if total == 0 {
		t.Fatal("no events for site 1")
	}
	if misses != 0 {
		t.Fatalf("correlated branch misses = %d / %d", misses, total)
	}
	// Branch 0 itself is unpredictable from branch 1's outcome only when
	// the pattern is uncorrelated; don't assert on it.
}

func TestPathKeyEncoding(t *testing.T) {
	var k PathKey
	k = k<<16 | PathKey(pathElem(3, true))
	k = k<<16 | PathKey(pathElem(7, false))
	if k.Len() != 2 {
		t.Fatalf("len = %d", k.Len())
	}
	site, taken, ok := k.Elem(0)
	if !ok || site != 7 || taken {
		t.Fatalf("elem0 = %d %v %v", site, taken, ok)
	}
	site, taken, ok = k.Elem(1)
	if !ok || site != 3 || !taken {
		t.Fatalf("elem1 = %d %v %v", site, taken, ok)
	}
	if _, _, ok := k.Elem(2); ok {
		t.Fatal("elem2 should be empty")
	}
	if k.Suffix(1).Len() != 1 {
		t.Fatal("suffix(1) wrong")
	}
	if k.Suffix(4) != k {
		t.Fatal("suffix(4) must be identity here")
	}
}

func TestPathHistoryDistinguishesPaths(t *testing.T) {
	// Branch 2's outcome equals branch 0's outcome two steps ago... simpler:
	// Branch 2 is taken exactly when branch 1 was taken (immediately
	// preceding). Path length 1 captures it perfectly.
	h := NewPathHistory(3, 1)
	t1, t2 := term(1), term(2)
	outcomes := []bool{true, false, true, true, false, false, true}
	for _, o := range outcomes {
		h.Branch(t1, o)
		h.Branch(t2, o)
	}
	misses, total := h.SiteMisses(2)
	if total == 0 {
		t.Fatal("no path data for site 2")
	}
	if misses != 0 {
		t.Fatalf("path-predictable branch misses = %d / %d", misses, total)
	}
}

func TestPathProjectConserves(t *testing.T) {
	h := NewPathHistory(2, 3)
	t0, t1 := term(0), term(1)
	x := uint32(12345)
	for i := 0; i < 500; i++ {
		x = x*1664525 + 1013904223
		h.Branch(t0, x&4 != 0)
		x = x*1664525 + 1013904223
		h.Branch(t1, x&8 != 0)
	}
	var fullTotal uint64
	for _, p := range h.Table(1) {
		fullTotal += p.Total()
	}
	for j := 1; j <= 3; j++ {
		proj := h.ProjectPaths(1, j)
		var tot uint64
		for _, p := range proj {
			tot += p.Total()
		}
		if tot != fullTotal {
			t.Fatalf("projection %d loses counts: %d != %d", j, tot, fullTotal)
		}
	}
}

func TestFillRates(t *testing.T) {
	h := NewLocalHistory(1, 3)
	// Always taken: only one 3-bit pattern (111) ever used.
	feed(h, 0, "1111111111")
	rates := h.FillRates()
	if len(rates) != 3 {
		t.Fatalf("rates = %v", rates)
	}
	// length 1: 1 of 2 slots → 50%; length 2: 1 of 4 → 25%; length 3: 1/8.
	want := []float64{50, 25, 12.5}
	for i, w := range want {
		if got := rates[i].Rate(); got != w {
			t.Fatalf("fill rate length %d = %v, want %v", i+1, got, w)
		}
	}
}

func TestFillRateEmpty(t *testing.T) {
	h := NewLocalHistory(4, 2)
	rates := h.FillRates()
	for _, r := range rates {
		if r.Rate() != 0 {
			t.Fatalf("empty profile rate = %v", r.Rate())
		}
	}
}

func TestProfileBundle(t *testing.T) {
	p := New(2, Options{})
	if p.Local.K != 9 || p.Global.K != 9 || p.Path.M != 3 {
		t.Fatalf("defaults wrong: %d %d %d", p.Local.K, p.Global.K, p.Path.M)
	}
	tm := term(1)
	for i := 0; i < 100; i++ {
		p.Branch(tm, i%2 == 0)
	}
	if p.Counts.Total(1) != 100 {
		t.Fatal("counts not fed")
	}
	if p.Local.Recorded() == 0 || p.Global.Recorded() == 0 || p.Path.Recorded() == 0 {
		t.Fatal("history tables not fed")
	}
}

func TestOptionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k=0 local history")
		}
	}()
	NewLocalHistory(1, 0)
}

func TestSiteMissesMatchesMinority(t *testing.T) {
	h := NewGlobalHistory(1, 2)
	tm := term(0)
	// Feed a fixed sequence; verify misses = sum of per-pattern minorities.
	seq := "110100111010011101"
	for _, ch := range seq {
		h.Branch(tm, ch == '1')
	}
	tab := h.Table(0)
	var want uint64
	for _, p := range tab {
		want += p.Misses()
	}
	got, _ := h.SiteMisses(0)
	if got != want {
		t.Fatalf("SiteMisses = %d, want %d", got, want)
	}
}
