package profile

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// feed drives a deterministic pseudo-random event sequence into a profile.
func feedProfile(p *Profile, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	site := int32(0)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			site = int32(rng.Intn(p.NSites))
		}
		p.RecordBranch(site, rng.Intn(3) != 0)
	}
}

func roundTrip(t *testing.T, p *Profile) *Profile {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Profile
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &got
}

// requireEqual compares every observable of two profiles: table contents,
// totals, and the packed streams.
func requireEqual(t *testing.T, a, b *Profile) {
	t.Helper()
	if a.NSites != b.NSites {
		t.Fatalf("NSites %d != %d", a.NSites, b.NSites)
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatal("Counts differ")
	}
	if a.Local.K != b.Local.K || a.Local.Recorded() != b.Local.Recorded() {
		t.Fatal("local header differs")
	}
	if a.Global.K != b.Global.K || a.Global.Recorded() != b.Global.Recorded() {
		t.Fatal("global header differs")
	}
	if a.Path.M != b.Path.M || a.Path.Recorded() != b.Path.Recorded() {
		t.Fatal("path header differs")
	}
	for s := int32(0); int(s) < a.NSites; s++ {
		if !reflect.DeepEqual(a.Local.Table(s), b.Local.Table(s)) {
			t.Fatalf("local table %d differs", s)
		}
		if !reflect.DeepEqual(a.Global.Table(s), b.Global.Table(s)) {
			t.Fatalf("global table %d differs", s)
		}
		at, bt := a.Path.Table(s), b.Path.Table(s)
		if len(at) != len(bt) {
			t.Fatalf("path table %d sizes differ", s)
		}
		for k, p := range at {
			q, ok := bt[k]
			if !ok || *p != *q {
				t.Fatalf("path table %d key %v differs", s, k)
			}
		}
		as, bs := a.Streams.Site(s), b.Streams.Site(s)
		if as.Len() != bs.Len() {
			t.Fatalf("stream %d lengths differ", s)
		}
		for i := 0; i < as.Len(); i++ {
			if as.Get(i) != bs.Get(i) {
				t.Fatalf("stream %d outcome %d differs", s, i)
			}
		}
	}
	if a.Streams.Total() != b.Streams.Total() {
		t.Fatal("stream totals differ")
	}
}

func TestProfileGobRoundTrip(t *testing.T) {
	p := New(24, Options{})
	feedProfile(p, 42, 50_000)
	requireEqual(t, p, roundTrip(t, p))
}

func TestProfileGobRoundTripEmpty(t *testing.T) {
	// A fresh, never-fed profile must survive too (lazy tables are nil).
	p := New(8, Options{LocalK: 5, GlobalK: 7, PathM: 2})
	got := roundTrip(t, p)
	requireEqual(t, p, got)
	if got.Local.K != 5 || got.Global.K != 7 || got.Path.M != 2 {
		t.Fatal("non-default options lost in round trip")
	}
}

// TestDecodedProfileKeepsCollecting pins that decode reconstructs the
// derived state (masks, memo caches, history registers): feeding the same
// tail into the original and the decoded copy must land identically.
func TestDecodedProfileKeepsCollecting(t *testing.T) {
	p := New(16, Options{})
	feedProfile(p, 7, 20_000)
	got := roundTrip(t, p)
	feedProfile(p, 99, 20_000)
	feedProfile(got, 99, 20_000)
	requireEqual(t, p, got)
}
