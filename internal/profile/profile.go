// Package profile implements the paper's profiling data model (section 3):
// per-branch pattern tables keyed by local history ("loop branches"), by a
// global history register ("correlated branches"), and by the path of
// preceding branches (used by the correlated-branch state machines). It also
// computes the pattern-table fill rates of Table 2 and the weighted-count
// algebra the state-machine search of section 4 is built on.
package profile

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Pair is a (taken, not-taken) count pair.
type Pair struct {
	Taken    uint64
	NotTaken uint64
}

// Add records one outcome.
func (p *Pair) Add(taken bool) {
	if taken {
		p.Taken++
	} else {
		p.NotTaken++
	}
}

// Merge accumulates another pair.
func (p *Pair) Merge(q Pair) {
	p.Taken += q.Taken
	p.NotTaken += q.NotTaken
}

// Total is the number of recorded outcomes.
func (p Pair) Total() uint64 { return p.Taken + p.NotTaken }

// MajorityTaken reports the more frequent direction; ties predict
// not-taken (the fall-through), a fixed convention used everywhere so
// results are deterministic.
func (p Pair) MajorityTaken() bool { return p.Taken > p.NotTaken }

// Hits is the count correctly predicted by the majority direction.
func (p Pair) Hits() uint64 {
	if p.Taken > p.NotTaken {
		return p.Taken
	}
	return p.NotTaken
}

// Misses is the count mispredicted by the majority direction.
func (p Pair) Misses() uint64 {
	if p.Taken > p.NotTaken {
		return p.NotTaken
	}
	return p.Taken
}

func (p Pair) String() string { return fmt.Sprintf("%d/%d", p.Taken, p.NotTaken) }

// LocalHistory builds, per branch site, a pattern table keyed by the last K
// outcomes of that same branch (the "loop branch" strategy). Bit 0 of a
// pattern is the most recent outcome; 1 = taken. The first K outcomes of a
// site are warm-up and are not recorded.
type LocalHistory struct {
	K     int
	hist  []uint32
	seen  []uint32
	tabs  [][]Pair // lazily allocated, 1<<K entries
	mask  uint32
	total uint64
}

// NewLocalHistory creates tables for nSites branches with K-bit histories.
// K must be between 1 and 16.
func NewLocalHistory(nSites, k int) *LocalHistory {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("profile: local history length %d out of range [1,16]", k))
	}
	return &LocalHistory{
		K:    k,
		hist: make([]uint32, nSites),
		seen: make([]uint32, nSites),
		tabs: make([][]Pair, nSites),
		mask: (1 << uint(k)) - 1,
	}
}

// Branch implements trace.Collector.
func (h *LocalHistory) Branch(t *ir.Term, taken bool) { h.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector (the replay-side entry
// point: a bare site ID, no *ir.Term).
func (h *LocalHistory) RecordBranch(s int32, taken bool) {
	if h.seen[s] >= uint32(h.K) {
		tab := h.tabs[s]
		if tab == nil {
			tab = make([]Pair, 1<<uint(h.K))
			h.tabs[s] = tab
		}
		tab[h.hist[s]].Add(taken)
		h.total++
	} else {
		h.seen[s]++
	}
	h.hist[s] = (h.hist[s]<<1 | b2u(taken)) & h.mask
}

// Recorded is the number of events recorded after warm-up.
func (h *LocalHistory) Recorded() uint64 { return h.total }

// NumSites is the number of branch sites the tables were sized for.
func (h *LocalHistory) NumSites() int { return len(h.tabs) }

// Table returns site s's K-bit pattern table (nil if never filled).
func (h *LocalHistory) Table(s int32) []Pair { return h.tabs[s] }

// Project sums site s's table down to length-bit patterns (length <= K):
// entry i of the result aggregates every K-bit pattern whose low bits are i.
func (h *LocalHistory) Project(s int32, length int) []Pair {
	return projectTable(h.tabs[s], h.K, length)
}

// SiteMisses returns the mispredictions for site s when each K-bit pattern
// predicts its majority direction (the full-table semi-static strategy).
func (h *LocalHistory) SiteMisses(s int32) (misses, total uint64) {
	return tableMisses(h.tabs[s])
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func projectTable(tab []Pair, k, length int) []Pair {
	if length < 1 || length > k {
		panic(fmt.Sprintf("profile: projection length %d out of range [1,%d]", length, k))
	}
	out := make([]Pair, 1<<uint(length))
	if tab == nil {
		return out
	}
	mask := uint32(1<<uint(length)) - 1
	for pat, p := range tab {
		if p.Taken|p.NotTaken != 0 {
			out[uint32(pat)&mask].Merge(p)
		}
	}
	return out
}

func tableMisses(tab []Pair) (misses, total uint64) {
	for _, p := range tab {
		misses += p.Misses()
		total += p.Total()
	}
	return misses, total
}

// GlobalHistory builds, per branch site, a pattern table keyed by the last K
// outcomes of *any* branch (one shared global history register), the
// "correlated branch" strategy. The first K events of the whole run are
// warm-up.
type GlobalHistory struct {
	K     int
	ghr   uint32
	seen  uint32
	tabs  [][]Pair
	mask  uint32
	total uint64
}

// NewGlobalHistory creates tables for nSites branches with a K-bit global
// history register.
func NewGlobalHistory(nSites, k int) *GlobalHistory {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("profile: global history length %d out of range [1,16]", k))
	}
	return &GlobalHistory{
		K:    k,
		tabs: make([][]Pair, nSites),
		mask: (1 << uint(k)) - 1,
	}
}

// Branch implements trace.Collector.
func (h *GlobalHistory) Branch(t *ir.Term, taken bool) { h.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector.
func (h *GlobalHistory) RecordBranch(s int32, taken bool) {
	if h.seen >= uint32(h.K) {
		tab := h.tabs[s]
		if tab == nil {
			tab = make([]Pair, 1<<uint(h.K))
			h.tabs[s] = tab
		}
		tab[h.ghr].Add(taken)
		h.total++
	} else {
		h.seen++
	}
	h.ghr = (h.ghr<<1 | b2u(taken)) & h.mask
}

// Recorded is the number of events recorded after warm-up.
func (h *GlobalHistory) Recorded() uint64 { return h.total }

// NumSites is the number of branch sites the tables were sized for.
func (h *GlobalHistory) NumSites() int { return len(h.tabs) }

// Table returns site s's K-bit global-history table (nil if never filled).
func (h *GlobalHistory) Table(s int32) []Pair { return h.tabs[s] }

// Project aggregates to length-bit global patterns.
func (h *GlobalHistory) Project(s int32, length int) []Pair {
	return projectTable(h.tabs[s], h.K, length)
}

// SiteMisses is the full-table misprediction count for site s.
func (h *GlobalHistory) SiteMisses(s int32) (misses, total uint64) {
	return tableMisses(h.tabs[s])
}

// PathKey encodes the last ≤4 (site, direction) pairs on the dynamic path
// to a branch: 16 bits per element, most recent in the low bits. The
// element encoding is (site+1)<<1 | dir, so 0 means "empty slot".
type PathKey uint64

// pathElem encodes one executed branch.
func pathElem(site int32, taken bool) uint64 {
	return uint64(uint32(site+1))<<1 | uint64(b2u(taken))
}

// Suffix truncates the key to its most recent n elements.
func (k PathKey) Suffix(n int) PathKey {
	if n >= 4 {
		return k
	}
	return k & (PathKey(1)<<(16*uint(n)) - 1)
}

// Len is the number of non-empty elements in the key.
func (k PathKey) Len() int {
	n := 0
	for k != 0 {
		n++
		k >>= 16
	}
	return n
}

// Elem returns the i-th most recent element (0 = most recent) as
// (site, taken); ok is false for empty slots.
func (k PathKey) Elem(i int) (site int32, taken bool, ok bool) {
	e := uint64(k>>(16*uint(i))) & 0xffff
	if e == 0 {
		return 0, false, false
	}
	return int32(e>>1) - 1, e&1 == 1, true
}

func (k PathKey) String() string {
	s := "["
	for i := 0; i < 4; i++ {
		site, taken, ok := k.Elem(i)
		if !ok {
			break
		}
		if i > 0 {
			s += " "
		}
		d := "N"
		if taken {
			d = "T"
		}
		s += fmt.Sprintf("b%d:%s", site, d)
	}
	return s + "]"
}

// PathHistory builds, per branch site, outcome counts keyed by the path of
// the last M executed branches (any site). M is at most 4. The first M
// events of the run are warm-up. Site IDs must fit in 15 bits.
type PathHistory struct {
	M     int
	key   PathKey
	seen  uint32
	tabs  []map[PathKey]*Pair
	total uint64
	// memoKey/memoP cache the last (path key, Pair) resolved per site;
	// see pairAt in run.go.
	memoKey []PathKey
	memoP   []*Pair
}

// NewPathHistory creates path tables for nSites branches and paths of
// length M (1..4).
func NewPathHistory(nSites, m int) *PathHistory {
	if m < 1 || m > 4 {
		panic(fmt.Sprintf("profile: path length %d out of range [1,4]", m))
	}
	return &PathHistory{
		M:       m,
		tabs:    make([]map[PathKey]*Pair, nSites),
		memoKey: make([]PathKey, nSites),
		memoP:   make([]*Pair, nSites),
	}
}

// Branch implements trace.Collector.
func (h *PathHistory) Branch(t *ir.Term, taken bool) { h.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector.
func (h *PathHistory) RecordBranch(s int32, taken bool) {
	if s >= 1<<15 {
		panic("profile: site id does not fit in a path element")
	}
	if h.seen >= uint32(h.M) {
		tab := h.tabs[s]
		if tab == nil {
			tab = make(map[PathKey]*Pair)
			h.tabs[s] = tab
		}
		h.pairAt(s, tab, h.key.Suffix(h.M)).Add(taken)
		h.total++
	} else {
		h.seen++
	}
	h.key = h.key<<16 | PathKey(pathElem(s, taken))
	h.key = h.key.Suffix(4)
}

// Recorded is the number of events recorded after warm-up.
func (h *PathHistory) Recorded() uint64 { return h.total }

// NumSites is the number of branch sites the tables were sized for.
func (h *PathHistory) NumSites() int { return len(h.tabs) }

// Table returns site s's path table (nil if never filled).
func (h *PathHistory) Table(s int32) map[PathKey]*Pair { return h.tabs[s] }

// ProjectPaths aggregates site s's M-length path counts down to suffixes of
// the given length.
func (h *PathHistory) ProjectPaths(s int32, length int) map[PathKey]Pair {
	if length < 1 || length > h.M {
		panic(fmt.Sprintf("profile: path projection length %d out of range [1,%d]", length, h.M))
	}
	out := make(map[PathKey]Pair)
	for k, p := range h.tabs[s] {
		sk := k.Suffix(length)
		q := out[sk]
		q.Merge(*p)
		out[sk] = q
	}
	return out
}

// SiteMisses is the full-path-table misprediction count for site s.
func (h *PathHistory) SiteMisses(s int32) (misses, total uint64) {
	for _, p := range h.tabs[s] {
		misses += p.Misses()
		total += p.Total()
	}
	return misses, total
}

// FillRate is one row slice of the paper's Table 2: for a given history
// length, the fraction of pattern-table entries actually used, averaged
// over the branches that have a table.
type FillRate struct {
	Length int
	// Used and Capacity are summed over branches with at least one entry.
	Used, Capacity uint64
}

// Rate is Used/Capacity in percent.
func (f FillRate) Rate() float64 {
	if f.Capacity == 0 {
		return 0
	}
	return 100 * float64(f.Used) / float64(f.Capacity)
}

// LocalFillRates computes Table 2 for local-history tables: for each
// history length 1..K, the percentage of the 2^length pattern slots used,
// over executed branches.
func (h *LocalHistory) FillRates() []FillRate {
	out := make([]FillRate, h.K)
	for j := 1; j <= h.K; j++ {
		fr := FillRate{Length: j}
		for s := range h.tabs {
			if h.tabs[s] == nil {
				continue
			}
			proj := h.Project(int32(s), j)
			used := uint64(0)
			for _, p := range proj {
				if p.Total() > 0 {
					used++
				}
			}
			if used > 0 {
				fr.Used += used
				fr.Capacity += 1 << uint(j)
			}
		}
		out[j-1] = fr
	}
	return out
}

// FillRates computes the same statistic for global-history tables.
func (h *GlobalHistory) FillRates() []FillRate {
	out := make([]FillRate, h.K)
	for j := 1; j <= h.K; j++ {
		fr := FillRate{Length: j}
		for s := range h.tabs {
			if h.tabs[s] == nil {
				continue
			}
			proj := h.Project(int32(s), j)
			used := uint64(0)
			for _, p := range proj {
				if p.Total() > 0 {
					used++
				}
			}
			if used > 0 {
				fr.Used += used
				fr.Capacity += 1 << uint(j)
			}
		}
		out[j-1] = fr
	}
	return out
}

// Profile bundles every table the downstream analyses need, collected in a
// single interpreter pass.
type Profile struct {
	NSites  int
	Counts  *trace.Counts
	Local   *LocalHistory
	Global  *GlobalHistory
	Path    *PathHistory
	Streams *Streams
	// Targets holds the per-site switch outcome histograms that guide the
	// indirect clustering family; conditional-branch sites keep nil rows.
	Targets *trace.TargetCounts
}

// Options configures profile collection.
type Options struct {
	// LocalK is the local history length (default 9, the paper's choice).
	LocalK int
	// GlobalK is the global history length (default 9).
	GlobalK int
	// PathM is the maximum correlated path length (default 3).
	PathM int
}

func (o *Options) setDefaults() {
	if o.LocalK == 0 {
		o.LocalK = 9
	}
	if o.GlobalK == 0 {
		o.GlobalK = 9
	}
	if o.PathM == 0 {
		o.PathM = 3
	}
}

// New creates an empty profile for nSites branch sites.
func New(nSites int, opts Options) *Profile {
	opts.setDefaults()
	return &Profile{
		NSites:  nSites,
		Counts:  trace.NewCounts(nSites),
		Local:   NewLocalHistory(nSites, opts.LocalK),
		Global:  NewGlobalHistory(nSites, opts.GlobalK),
		Path:    NewPathHistory(nSites, opts.PathM),
		Streams: NewStreams(nSites),
		Targets: trace.NewTargetCounts(nSites),
	}
}

// Switch implements interp's SwitchFunc shape, feeding the target table.
func (p *Profile) Switch(t *ir.Term, outcome int32) { p.RecordSwitch(t.Site, outcome) }

// RecordSwitch implements trace.SwitchCollector.
func (p *Profile) RecordSwitch(site, outcome int32) {
	p.Targets.RecordSwitch(site, outcome)
}

// RecordSwitchRun implements trace.SwitchRunCollector.
func (p *Profile) RecordSwitchRun(site, outcome int32, n uint64) {
	p.Targets.RecordSwitchRun(site, outcome, n)
}

// Branch implements trace.Collector, feeding all tables.
func (p *Profile) Branch(t *ir.Term, taken bool) { p.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector, feeding all tables.
func (p *Profile) RecordBranch(site int32, taken bool) {
	p.Counts.RecordBranch(site, taken)
	p.Local.RecordBranch(site, taken)
	p.Global.RecordBranch(site, taken)
	p.Path.RecordBranch(site, taken)
	p.Streams.RecordBranch(site, taken)
}
