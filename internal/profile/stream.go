package profile

import "repro/internal/ir"

// Stream is a packed per-branch outcome sequence (1 = taken). The
// state-machine search replays streams to score candidate machines with
// exact automaton semantics, instead of the paper's slightly optimistic
// longest-match counting (see DESIGN.md).
type Stream struct {
	words []uint64
	n     int
}

// Append records one outcome.
func (s *Stream) Append(taken bool) {
	w := s.n >> 6
	if w == len(s.words) {
		s.words = append(s.words, 0)
	}
	if taken {
		s.words[w] |= 1 << uint(s.n&63)
	}
	s.n++
}

// Len is the number of recorded outcomes.
func (s *Stream) Len() int { return s.n }

// Get returns outcome i.
func (s *Stream) Get(i int) bool {
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Streams collects one outcome stream per branch site.
type Streams struct {
	sites []Stream
	total uint64
}

// NewStreams sizes the collector for nSites branch sites.
func NewStreams(nSites int) *Streams {
	return &Streams{sites: make([]Stream, nSites)}
}

// Branch implements trace.Collector.
func (c *Streams) Branch(t *ir.Term, taken bool) { c.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector.
func (c *Streams) RecordBranch(site int32, taken bool) {
	c.sites[site].Append(taken)
	c.total++
}

// Site returns the stream of one branch site.
func (c *Streams) Site(s int32) *Stream { return &c.sites[s] }

// NumSites is the number of branch sites.
func (c *Streams) NumSites() int { return len(c.sites) }

// Total is the number of recorded events.
func (c *Streams) Total() uint64 { return c.total }
