package profile

// Run-aware collection: every table implements trace.RunCollector with an
// exact shortcut for runs of identical outcomes. Each method splits a run
// into warm-up, a bounded transient replayed with the table's usual
// per-event update (inlined, with the site's register state hoisted into
// locals for the whole run), and a steady-state remainder folded in with
// O(1) arithmetic once the history register reaches its absorbing
// all-taken / all-not-taken pattern. The absorbing argument per table
// (and why the split is exact) is DESIGN.md §7; the bit-identical
// contract is pinned by FuzzRunCollectorEquivalence.

// RecordRun implements trace.RunCollector. Once site s has warmed up and
// its history register holds the all-taken (or all-not-taken) pattern, a
// further identical outcome records into the same table slot and leaves
// the register unchanged — so the remaining events collapse into one
// Pair update. The transient is at most K recording steps.
func (h *LocalHistory) RecordRun(s int32, taken bool, n uint64) {
	if n == 0 {
		return
	}
	hist := h.hist[s]
	seen := h.seen[s]
	var steady, bit uint32
	if taken {
		steady = h.mask
		bit = 1
	}
	for ; n > 0 && seen < uint32(h.K); n-- {
		seen++
		hist = (hist<<1 | bit) & h.mask
	}
	h.seen[s] = seen
	if n == 0 {
		h.hist[s] = hist
		return
	}
	tab := h.tabs[s]
	if tab == nil {
		tab = make([]Pair, 1<<uint(h.K))
		h.tabs[s] = tab
	}
	h.total += n
	for ; n > 0 && hist != steady; n-- {
		if taken {
			tab[hist].Taken++
		} else {
			tab[hist].NotTaken++
		}
		hist = (hist<<1 | bit) & h.mask
	}
	h.hist[s] = hist
	if n == 0 {
		return
	}
	if taken {
		tab[steady].Taken += n
	} else {
		tab[steady].NotTaken += n
	}
}

// RecordRun implements trace.RunCollector. Identical reasoning to
// LocalHistory, on the single shared history register: within a run every
// event comes from the same site, so once the register saturates the
// indexed slot is fixed too.
func (h *GlobalHistory) RecordRun(s int32, taken bool, n uint64) {
	if n == 0 {
		return
	}
	ghr := h.ghr
	var steady, bit uint32
	if taken {
		steady = h.mask
		bit = 1
	}
	for ; n > 0 && h.seen < uint32(h.K); n-- {
		h.seen++
		ghr = (ghr<<1 | bit) & h.mask
	}
	if n == 0 {
		h.ghr = ghr
		return
	}
	tab := h.tabs[s]
	if tab == nil {
		tab = make([]Pair, 1<<uint(h.K))
		h.tabs[s] = tab
	}
	h.total += n
	for ; n > 0 && ghr != steady; n-- {
		if taken {
			tab[ghr].Taken++
		} else {
			tab[ghr].NotTaken++
		}
		ghr = (ghr<<1 | bit) & h.mask
	}
	h.ghr = ghr
	if n == 0 {
		return
	}
	if taken {
		tab[steady].Taken += n
	} else {
		tab[steady].NotTaken += n
	}
}

// RecordRun implements trace.RunCollector. The path key's absorbing value
// under a run at site s is the element (s, dir) repeated in all four
// slots; from there each further event records into the same path slot
// and re-produces the same key. The transient is at most 4 recording
// steps.
func (h *PathHistory) RecordRun(s int32, taken bool, n uint64) {
	if n == 0 {
		return
	}
	if s >= 1<<15 {
		panic("profile: site id does not fit in a path element")
	}
	e := PathKey(pathElem(s, taken))
	steady := e | e<<16 | e<<32 | e<<48
	key := h.key
	for ; n > 0 && h.seen < uint32(h.M); n-- {
		h.seen++
		key = (key<<16 | e).Suffix(4)
	}
	if n == 0 {
		h.key = key
		return
	}
	tab := h.tabs[s]
	if tab == nil {
		tab = make(map[PathKey]*Pair)
		h.tabs[s] = tab
	}
	h.total += n
	for ; n > 0 && key != steady; n-- {
		h.pairAt(s, tab, key.Suffix(h.M)).Add(taken)
		key = (key<<16 | e).Suffix(4)
	}
	h.key = key
	if n == 0 {
		return
	}
	p := h.pairAt(s, tab, steady.Suffix(h.M))
	if taken {
		p.Taken += n
	} else {
		p.NotTaken += n
	}
}

// pairAt resolves the Pair for (site, path key) through the per-site memo
// — loop branches hit the same path context over and over, so most
// lookups skip the map entirely. The memo is a pure cache: Pair pointers
// are stable once inserted, and a post-warm-up key is never zero (its low
// element encodes site+1 >= 1), so the zero-valued memo entry cannot
// alias a real key while memoP is nil.
func (h *PathHistory) pairAt(s int32, tab map[PathKey]*Pair, key PathKey) *Pair {
	if h.memoKey[s] == key && h.memoP[s] != nil {
		return h.memoP[s]
	}
	p := tab[key]
	if p == nil {
		p = &Pair{}
		tab[key] = p
	}
	h.memoKey[s] = key
	h.memoP[s] = p
	return p
}

// AppendRun records n copies of the same outcome with word-at-a-time bit
// fills instead of n single-bit appends.
func (s *Stream) AppendRun(taken bool, n uint64) {
	if n == 0 {
		return
	}
	end := s.n + int(n)
	for need := (end + 63) >> 6; len(s.words) < need; {
		s.words = append(s.words, 0)
	}
	if taken {
		for i := s.n; i < end; {
			lo := uint(i & 63)
			cnt := 64 - lo
			if rem := uint(end - i); rem < cnt {
				cnt = rem
			}
			var m uint64
			if cnt == 64 {
				m = ^uint64(0)
			} else {
				m = (1<<cnt - 1) << lo
			}
			s.words[i>>6] |= m
			i += int(cnt)
		}
	}
	s.n = end
}

// RecordRun implements trace.RunCollector.
func (c *Streams) RecordRun(site int32, taken bool, n uint64) {
	c.sites[site].AppendRun(taken, n)
	c.total += n
}

// RecordRun implements trace.RunCollector, feeding all tables.
func (p *Profile) RecordRun(site int32, taken bool, n uint64) {
	p.Counts.AddRun(site, taken, n)
	p.Local.RecordRun(site, taken, n)
	p.Global.RecordRun(site, taken, n)
	p.Path.RecordRun(site, taken, n)
	p.Streams.RecordRun(site, taken, n)
}
