package core

import (
	"strings"
	"testing"

	"repro/internal/statemachine"
)

const alternating = `
var total int;

func main() int {
    for var i int = 0; i < 20000; i = i + 1 {
        if i % 2 == 0 { total = total + 3; } else { total = total - 1; }
    }
    print(total);
    return total;
}`

func TestPipelineEndToEnd(t *testing.T) {
	res, err := RunBL(alternating, Config{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineRate < 20 {
		t.Fatalf("baseline %.2f%%, expected ~25%%", res.BaselineRate)
	}
	if res.ReplicatedRate > 0.5 {
		t.Fatalf("replicated %.2f%%, expected ~0%%", res.ReplicatedRate)
	}
	if res.BaselineChecksum != res.ReplicatedChecksum {
		t.Fatal("checksum changed")
	}
	if res.SizeFactor() <= 1 || res.SizeFactor() > 3 {
		t.Fatalf("size factor %.2f out of expected band", res.SizeFactor())
	}
	if res.Profile == nil || res.Profile.Counts.TotalAll() == 0 {
		t.Fatal("profile missing")
	}
	var machines int
	for i := range res.Choices {
		if res.Choices[i].Kind != statemachine.KindProfile {
			machines++
		}
	}
	if machines == 0 {
		t.Fatal("no machines selected")
	}
	if res.Original == res.Replicated {
		t.Fatal("replicated program aliases original")
	}
}

func TestPipelineDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.MaxStates != 5 || cfg.MaxPathLen != 1 || cfg.MaxSizeFactor != 3 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestPipelineBudgetAndGlobals(t *testing.T) {
	src := `
var wseed int = 1;

func main() int {
    var s int = 0;
    for var i int = 0; i < 1000000; i = i + 1 {
        if (i + wseed) % 3 == 0 { s = s + 1; }
    }
    print(s);
    return s;
}`
	res, err := RunBL(src, Config{
		Budget:  50_000,
		Globals: map[string]int64{"wseed": 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Counts.TotalAll() != 50_000 {
		t.Fatalf("budget not honoured: %d", res.Profile.Counts.TotalAll())
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := RunBL("func main() int { return y; }", Config{}); err == nil {
		t.Fatal("want compile error")
	}
	if _, err := RunBL("func main() int { return 1/0; }", Config{}); err == nil {
		t.Fatal("want runtime error")
	}
	_, err := RunBL(alternating, Config{Globals: map[string]int64{"nope": 1}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-global error, got %v", err)
	}
}

func TestCompileBL(t *testing.T) {
	prog, err := CompileBL(alternating)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("main") == nil {
		t.Fatal("no main")
	}
}
