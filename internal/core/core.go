// Package core orchestrates the paper's primary contribution as a single
// pipeline: profile a program, build branch prediction state machines from
// the pattern tables, choose the best strategy per branch, replicate code
// so the machines become program structure, and verify the transformed
// program by executing it.
//
// It is the programmatic equivalent of cmd/replicate and the backing of
// the root package's public facade.
package core

import (
	"errors"
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/statemachine"
)

// Config parameterises a pipeline run.
type Config struct {
	// MaxStates bounds every state machine (default 5).
	MaxStates int
	// MaxPathLen caps correlated path lengths; 1 (the default) keeps every
	// selected machine realizable by the replicator.
	MaxPathLen int
	// MaxSizeFactor bounds code growth (default 3; 0 = unlimited).
	MaxSizeFactor float64
	// Budget bounds each run's branch events (0 = run to completion).
	Budget uint64
	// LocalK / GlobalK / PathM set the profile history lengths
	// (defaults 9 / 9 / 3, the paper's).
	LocalK, GlobalK, PathM int
	// Globals are int globals set before every run (workload seeds and
	// scales).
	Globals map[string]int64
}

func (c *Config) setDefaults() {
	if c.MaxStates == 0 {
		c.MaxStates = 5
	}
	if c.MaxPathLen == 0 {
		c.MaxPathLen = 1
	}
	if c.MaxSizeFactor == 0 {
		c.MaxSizeFactor = 3
	}
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Original and Replicated are the untouched and transformed programs.
	Original, Replicated *ir.Program
	// Profile is the collected profile of the original program.
	Profile *profile.Profile
	// Choices is the selected strategy per original branch site.
	Choices []statemachine.Choice
	// Stats reports what the replicator did.
	Stats *replicate.Stats
	// BaselineRate and ReplicatedRate are measured misprediction
	// percentages (profile-annotated original vs transformed program).
	BaselineRate, ReplicatedRate float64
	// BaselineChecksum and ReplicatedChecksum prove semantic equivalence
	// when the runs complete naturally (equal budgets make them
	// comparable under truncation too).
	BaselineChecksum, ReplicatedChecksum uint64
}

// SizeFactor is the measured code growth.
func (r *Result) SizeFactor() float64 { return r.Stats.SizeFactor() }

// CompileBL compiles BL source text.
func CompileBL(src string) (*ir.Program, error) { return lang.Compile(src) }

// Run executes the full pipeline on a compiled program.
func Run(prog *ir.Program, cfg Config) (*Result, error) {
	cfg.setDefaults()
	nSites := prog.NumberBranches(true)
	prof := profile.New(nSites, profile.Options{
		LocalK: cfg.LocalK, GlobalK: cfg.GlobalK, PathM: cfg.PathM,
	})
	if _, _, err := execute(prog, cfg, prof.Branch, prof.Switch); err != nil {
		return nil, fmt.Errorf("core: profiling run: %w", err)
	}

	feats := predict.Analyze(prog)
	choices := statemachine.Select(prof, feats, statemachine.Options{
		MaxStates:  cfg.MaxStates,
		MaxPathLen: cfg.MaxPathLen,
	})
	preds := predict.ProfileStatic(prof.Counts).Preds

	baseline := ir.CloneProgram(prog)
	replicate.Annotate(baseline, preds)
	baseRate, baseSum, err := execute(baseline, cfg, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("core: baseline run: %w", err)
	}

	clone := ir.CloneProgram(prog)
	stats, err := replicate.ApplyOpts(clone, choices, preds, replicate.Options{
		MaxSizeFactor: cfg.MaxSizeFactor,
	})
	if err != nil {
		return nil, err
	}
	replRate, replSum, err := execute(clone, cfg, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("core: replicated run: %w", err)
	}

	return &Result{
		Original:           prog,
		Replicated:         clone,
		Profile:            prof,
		Choices:            choices,
		Stats:              stats,
		BaselineRate:       baseRate,
		ReplicatedRate:     replRate,
		BaselineChecksum:   baseSum,
		ReplicatedChecksum: replSum,
	}, nil
}

// RunBL compiles and runs the pipeline on BL source.
func RunBL(src string, cfg Config) (*Result, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	return Run(prog, cfg)
}

func execute(prog *ir.Program, cfg Config, hook interp.BranchFunc, swHook interp.SwitchFunc) (rate float64, checksum uint64, err error) {
	m := interp.New(prog)
	m.MaxBranches = cfg.Budget
	m.Hook = hook
	m.SwHook = swHook
	for name, v := range cfg.Globals {
		if err := m.SetGlobal(name, v); err != nil {
			return 0, 0, err
		}
	}
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		return 0, 0, err
	}
	if m.Predicted > 0 {
		rate = 100 * float64(m.Mispredicted) / float64(m.Predicted)
	}
	return rate, m.Checksum, nil
}
