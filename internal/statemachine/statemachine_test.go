package statemachine

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/profile"
)

func term(site int32) *ir.Term {
	return &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
}

// localTable builds a k-bit local pattern table from an outcome string.
func localTable(outcomes string, k int) []profile.Pair {
	h := profile.NewLocalHistory(1, k)
	t := term(0)
	for _, ch := range outcomes {
		h.Branch(t, ch == '1')
	}
	return h.Table(0)
}

func repeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}

func TestPatternBasics(t *testing.T) {
	p, err := ParsePattern("011")
	if err != nil {
		t.Fatal(err)
	}
	// oldest-first "011": oldest 0, then 1, then most recent 1.
	if p.Len != 3 || p.Bits != 0b011 {
		t.Fatalf("parsed %v bits=%b", p, p.Bits)
	}
	if p.String() != "011" {
		t.Fatalf("String = %q", p.String())
	}
	one := Pattern{Bits: 1, Len: 1}
	if !one.IsSuffixOf(p) {
		t.Fatal("1 must be a suffix of 011")
	}
	zero := Pattern{Bits: 0, Len: 1}
	if zero.IsSuffixOf(p) {
		t.Fatal("0 must not be a suffix of 011")
	}
	ext := one.Extend(false) // older bit 0 → "01"
	if ext.String() != "01" {
		t.Fatalf("Extend = %v", ext)
	}
	sh := p.Shift(false) // outcome 0 after 011 → "0110"
	if sh.String() != "0110" {
		t.Fatalf("Shift = %v", sh)
	}
	if p.Suffix(2).String() != "11" {
		t.Fatalf("Suffix = %v", p.Suffix(2))
	}
}

func TestParsePatternErrors(t *testing.T) {
	for _, s := range []string{"", "012", "abc"} {
		if _, err := ParsePattern(s); err == nil {
			t.Fatalf("ParsePattern(%q) should fail", s)
		}
	}
}

func TestCountTreeConsistency(t *testing.T) {
	check := func(seed uint32, n uint16) bool {
		h := profile.NewLocalHistory(1, 5)
		x := seed
		tm := term(0)
		for i := 0; i < int(n)+40; i++ {
			x = x*1664525 + 1013904223
			h.Branch(tm, x&0x30000 != 0)
		}
		tree := NewCountTree(h.Table(0), 5)
		// Every level must conserve the total.
		want := tree.Total()
		for l := 1; l <= 5; l++ {
			var got uint64
			for b := 0; b < 1<<uint(l); b++ {
				got += tree.Count(Pattern{Bits: uint32(b), Len: uint8(l)}).Total()
			}
			if got != want {
				return false
			}
		}
		// Parent = sum of its two extensions.
		p := Pattern{Bits: 1, Len: 1}
		a := tree.Count(p.Extend(false))
		b := tree.Count(p.Extend(true))
		c := tree.Count(p)
		return c.Taken == a.Taken+b.Taken && c.NotTaken == a.NotTaken+b.NotTaken
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBestLoopMachineAlternating(t *testing.T) {
	// Alternating branch: the 2-state machine {0,1} is already perfect —
	// the paper's Figure 1 example.
	tab := localTable(repeat("10", 500), 9)
	m := BestLoopMachine(tab, 9, 2)
	if m.NumStates() != 2 {
		t.Fatalf("states = %d", m.NumStates())
	}
	if m.Rate() != 0 {
		t.Fatalf("alternating 2-state rate = %.2f%%, want 0", m.Rate())
	}
	// State "0" must predict taken, "1" not-taken.
	i0 := m.StateIndex(Pattern{Bits: 0, Len: 1})
	i1 := m.StateIndex(Pattern{Bits: 1, Len: 1})
	if i0 < 0 || i1 < 0 {
		t.Fatalf("missing catch-all states: %v", m.States)
	}
	if !m.PredTaken[i0] || m.PredTaken[i1] {
		t.Fatalf("predictions wrong: %v", m)
	}
	// Transitions swap the two states.
	if m.Next(i0, true) != i1 || m.Next(i1, false) != i0 {
		t.Fatal("transition function wrong")
	}
}

func TestBestLoopMachinePeriod3(t *testing.T) {
	// Pattern 110 repeating: needs 2 bits of history; a 2-state machine
	// cannot be perfect, a 4-state one can (knows last two outcomes).
	tab := localTable(repeat("110", 400), 9)
	m2 := BestLoopMachine(tab, 9, 2)
	if m2.Rate() == 0 {
		t.Fatalf("2-state machine cannot nail period-3, got %v", m2)
	}
	m4 := BestLoopMachine(tab, 9, 4)
	if m4.Rate() != 0 {
		t.Fatalf("4-state machine on period-3: %v", m4)
	}
	// More states never hurt.
	for n := 2; n <= 6; n++ {
		m := BestLoopMachine(tab, 9, n)
		if n > 2 {
			prev := BestLoopMachine(tab, 9, n-1)
			if m.Hits < prev.Hits {
				t.Fatalf("monotonicity violated at n=%d", n)
			}
		}
	}
}

func TestLoopMachineMatchesFullTableWhenLarge(t *testing.T) {
	// With enough states (here 2^k for small k) the machine hits equal the
	// full pattern table's hits.
	k := 3
	tab := localTable(repeat("1011010", 200), k)
	full := uint64(0)
	var total uint64
	for _, p := range tab {
		full += p.Hits()
		total += p.Total()
	}
	// A machine with every pattern of length ≤ 3 as state: up to
	// 2+4+8 = 14 states; suffix-closure means the 8 longest dominate.
	m := BestLoopMachine(tab, k, 14)
	if m.Hits < full {
		t.Fatalf("machine hits %d < full table hits %d (total %d)", m.Hits, full, total)
	}
}

func TestLoopMachineEmptyTable(t *testing.T) {
	m := BestLoopMachine(nil, 9, 3)
	if m.Total != 0 || m.NumStates() != 3 {
		t.Fatalf("empty table machine: %+v", m)
	}
	// Transition must still be total.
	for i := range m.States {
		m.Next(i, true)
		m.Next(i, false)
	}
}

func TestLoopMachineTransitionInvariant(t *testing.T) {
	// Property: from any state, after feeding the outcomes that spell a
	// state's pattern (oldest first), the machine ends in a state that is
	// a suffix of that pattern sequence.
	tab := localTable(repeat("1100101", 300), 6)
	for n := 2; n <= 8; n++ {
		m := BestLoopMachine(tab, 6, n)
		for i := range m.States {
			for _, d := range []bool{false, true} {
				j := m.Next(i, d)
				// The new state must match the shifted knowledge.
				cand := m.States[i].Shift(d)
				if !m.States[j].IsSuffixOf(cand) {
					t.Fatalf("n=%d: state %v --%v--> %v does not match %v",
						n, m.States[i], d, m.States[j], cand)
				}
			}
		}
		if m.Init < 0 || m.Init >= len(m.States) {
			t.Fatalf("bad init state %d", m.Init)
		}
	}
}

func TestEnumerateSuffixClosedCounts(t *testing.T) {
	// With maxLen=2 and base {0,1}: extensions are 00,10,01,11. Sets of
	// size 3 = choose 1 of 4; size 4 = choose 2 of 4 = 6; all are valid
	// suffix-closed sets (length-2 children of length-1 bases).
	count := func(n int) int {
		c := 0
		base := []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}}
		enumerateSuffixClosed(base, n, 2, func(states []Pattern) { c++ })
		return c
	}
	if got := count(2); got != 1 {
		t.Fatalf("n=2: %d sets, want 1", got)
	}
	if got := count(3); got != 4 {
		t.Fatalf("n=3: %d sets, want 4", got)
	}
	if got := count(4); got != 6 {
		t.Fatalf("n=4: %d sets, want 6", got)
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	base := []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}}
	seen := map[string]bool{}
	enumerateSuffixClosed(base, 5, 4, func(states []Pattern) {
		cp := make([]Pattern, len(states))
		copy(cp, states)
		sortPatterns(cp)
		key := ""
		for _, p := range cp {
			key += p.String() + ","
		}
		if seen[key] {
			t.Fatalf("duplicate set %s", key)
		}
		seen[key] = true
	})
	if len(seen) == 0 {
		t.Fatal("no sets enumerated")
	}
}

func TestExitMachineCountedLoop(t *testing.T) {
	// A loop that always runs exactly 4 iterations: outcomes per loop
	// visit are 1,1,1,0 (taken=stay). Exit machine with 5 states is
	// perfect; the plain profile is 25% wrong.
	outcomes := repeat("1110", 300)
	tab := localTable(outcomes, 9)
	em := NewExitMachine(tab, 9, 5, false /* exit is not-taken */)
	if em.Rate() != 0 {
		t.Fatalf("5-state exit machine on count-4 loop: %.2f%% (%+v)", em.Rate(), em)
	}
	em3 := NewExitMachine(tab, 9, 3, false)
	if em3.Rate() == 0 {
		t.Fatal("3-state machine cannot know iteration 3 from 1")
	}
	if em3.Rate() >= 50 {
		t.Fatalf("3-state rate %.2f%% implausible", em3.Rate())
	}
}

func TestExitMachineTakenExit(t *testing.T) {
	// Same loop but the exit is the taken direction: outcomes 0,0,0,1.
	tab := localTable(repeat("0001", 300), 9)
	em := NewExitMachine(tab, 9, 5, true)
	if em.Rate() != 0 {
		t.Fatalf("taken-exit machine: %.2f%%", em.Rate())
	}
	// Transition: exit (taken) returns to 0; stay saturates at N-1.
	if em.Next(3, true) != 0 {
		t.Fatal("exit must reset")
	}
	if em.Next(3, false) != 4 || em.Next(4, false) != 4 {
		t.Fatal("stay must saturate")
	}
}

func TestExitMachineParity(t *testing.T) {
	// Loop alternates between 2 and 2 iterations... use alternating runs
	// of length 1 and 3 (paper's even/odd note): outcomes 10, 1110
	// repeating. A deep chain separates the run lengths.
	tab := localTable(repeat("101110", 200), 9)
	deep := NewExitMachine(tab, 9, 6, false)
	shallow := NewExitMachine(tab, 9, 2, false)
	if deep.Misses() > shallow.Misses() {
		t.Fatalf("deeper chain worse: %d vs %d", deep.Misses(), shallow.Misses())
	}
}

func TestPathMachinePerfectCorrelation(t *testing.T) {
	// Site 2 copies site 1's outcome. The path machine with 3 states
	// (two 1-long paths + catch-all) predicts perfectly.
	h := profile.NewPathHistory(3, 2)
	t1, t2 := term(1), term(2)
	x := uint32(5)
	for i := 0; i < 2000; i++ {
		x = x*1664525 + 1013904223
		o := x&0x100 != 0
		h.Branch(t1, o)
		h.Branch(t2, o)
	}
	m := BestPathMachine(h, 2, 3, 0)
	if m.Rate() != 0 {
		t.Fatalf("correlated path machine: %.2f%% (%v)", m.Rate(), m)
	}
	if m.NumStates() > 3 {
		t.Fatalf("too many states: %d", m.NumStates())
	}
	// Predict must follow the matched path.
	for _, p := range m.Paths {
		idx := m.Match(p)
		if idx < 0 || m.Predict(p) != m.PredTaken[idx] {
			t.Fatal("Match/Predict inconsistent")
		}
	}
}

func TestPathMachineGreedyStopsWhenNoGain(t *testing.T) {
	// A perfectly biased branch: extra path states add nothing, greedy
	// must stop at the catch-all.
	h := profile.NewPathHistory(2, 2)
	t0, t1 := term(0), term(1)
	for i := 0; i < 500; i++ {
		h.Branch(t0, i%2 == 0)
		h.Branch(t1, true)
	}
	m := BestPathMachine(h, 1, 5, 0)
	if len(m.Paths) != 0 {
		t.Fatalf("greedy added useless paths: %v", m)
	}
	if m.Rate() != 0 {
		t.Fatalf("biased branch rate = %.2f%%", m.Rate())
	}
}

func TestPathMachineMoreStatesNeverWorse(t *testing.T) {
	h := profile.NewPathHistory(2, 3)
	t0, t1 := term(0), term(1)
	x := uint32(77)
	for i := 0; i < 3000; i++ {
		x = x*1664525 + 1013904223
		a := x&0x1000 != 0
		h.Branch(t0, a)
		// t1 depends on t0 xor parity — needs path length ≥ 2 for full
		// accuracy.
		h.Branch(t1, a != (i%2 == 0))
	}
	prev := uint64(0)
	for n := 1; n <= 6; n++ {
		m := BestPathMachine(h, 1, n, 0)
		if m.Hits < prev {
			t.Fatalf("hits decreased at n=%d", n)
		}
		prev = m.Hits
	}
}

func TestScorePathSetPartition(t *testing.T) {
	h := profile.NewPathHistory(2, 2)
	t0, t1 := term(0), term(1)
	x := uint32(9)
	for i := 0; i < 1000; i++ {
		x = x*1664525 + 1013904223
		h.Branch(t0, x&2 != 0)
		h.Branch(t1, x&4 != 0)
	}
	full := h.Table(1)
	var want uint64
	for _, p := range full {
		want += p.Total()
	}
	// Any path set must partition all events.
	var somePath profile.PathKey
	for k := range full {
		somePath = k.Suffix(1)
		break
	}
	_, total, _, _ := scorePathSet(full, []profile.PathKey{somePath})
	if total != want {
		t.Fatalf("partition broken: %d != %d", total, want)
	}
}
