package statemachine

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/profile"
)

// Kind names the strategy family chosen for one branch.
type Kind uint8

const (
	// KindProfile is plain majority prediction (no state machine).
	KindProfile Kind = iota
	// KindLoop is an intra-loop local-history machine.
	KindLoop
	// KindExit is a loop-exit chain machine.
	KindExit
	// KindPath is a correlated (path) machine.
	KindPath
)

func (k Kind) String() string {
	switch k {
	case KindProfile:
		return "profile"
	case KindLoop:
		return "loop"
	case KindExit:
		return "exit"
	case KindPath:
		return "correlated"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Choice is the selected strategy for one branch site, with its score.
type Choice struct {
	Site int32
	Kind Kind
	Loop *LoopMachine
	Exit *ExitMachine
	Path *PathMachine

	// Hits/Total score the chosen strategy; ProfileHits/ProfileTotal score
	// the plain profile baseline on the same branch.
	Hits, Total               uint64
	ProfileHits, ProfileTotal uint64
}

// NumStates is the chosen machine's size (1 for plain profile).
func (c *Choice) NumStates() int {
	switch c.Kind {
	case KindLoop:
		return c.Loop.NumStates()
	case KindExit:
		return c.Exit.NumStates()
	case KindPath:
		return c.Path.NumStates()
	}
	return 1
}

// Misses is the chosen strategy's mispredicted count.
func (c *Choice) Misses() uint64 { return c.Total - c.Hits }

// Rate is the chosen strategy's misprediction rate in percent.
func (c *Choice) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Misses()) / float64(c.Total)
}

// Gain is the number of additional correct predictions over plain profile,
// rate-normalised to the profile denominator (histories have small warm-up
// differences).
func (c *Choice) Gain() float64 {
	if c.Total == 0 || c.ProfileTotal == 0 {
		return 0
	}
	profRate := float64(c.ProfileHits) / float64(c.ProfileTotal)
	newRate := float64(c.Hits) / float64(c.Total)
	return (newRate - profRate) * float64(c.ProfileTotal)
}

// Options configures strategy selection.
type Options struct {
	// MaxStates bounds every machine's state count (the paper's Table 5
	// sweeps 2..10).
	MaxStates int
	// MaxPathLen caps correlated path lengths (≤ the profile's M;
	// 0 = use the profile's maximum).
	MaxPathLen int
	// DisableLoop/DisableExit/DisablePath turn families off, used by the
	// ablation benchmarks.
	DisableLoop bool
	DisableExit bool
	DisablePath bool
	// PaperCounting scores loop machines with the paper's longest-match
	// pattern counting instead of exact stream replay. The paper's tables
	// use its counting; the measured experiments must use replay, which is
	// what a replicated machine really achieves (see DESIGN.md §5).
	PaperCounting bool
}

// Select chooses the best available strategy for every branch site
// (section 5: "The best available strategy for each branch is chosen"):
// intra-loop machines for branches inside a loop, exit machines for
// branches leaving a loop, correlated machines for every branch, plain
// profile as the floor. Strategies are compared by misprediction rate on
// their own profiled counts.
func Select(prof *profile.Profile, feats []predict.SiteFeatures, opts Options) []Choice {
	if opts.MaxStates < 2 {
		panic(fmt.Sprintf("statemachine: MaxStates %d < 2", opts.MaxStates))
	}
	n := prof.NSites
	out := make([]Choice, n)
	for s := 0; s < n; s++ {
		c := &out[s]
		c.Site = int32(s)
		pp := profile.Pair{Taken: prof.Counts.Taken[s], NotTaken: prof.Counts.NotTaken[s]}
		c.ProfileHits, c.ProfileTotal = pp.Hits(), pp.Total()
		c.Kind = KindProfile
		c.Hits, c.Total = c.ProfileHits, c.ProfileTotal
		if pp.Total() == 0 {
			continue
		}
		bestRate := missRate(c.Hits, c.Total)
		ft := feats[s]
		inLoop := ft.InLoop
		exits := ft.TakenExits != ft.ElseExits

		if inLoop && !opts.DisableLoop {
			var lm *LoopMachine
			if opts.PaperCounting {
				lm = BestLoopMachine(prof.Local.Table(int32(s)), prof.Local.K, opts.MaxStates)
			} else {
				lm = BestLoopMachineExact(prof.Local.Table(int32(s)), prof.Local.K, opts.MaxStates, prof.Streams.Site(int32(s)))
			}
			if r := missRate(lm.Hits, lm.Total); lm.Total > 0 && r < bestRate {
				bestRate = r
				c.Kind, c.Loop, c.Hits, c.Total = KindLoop, lm, lm.Hits, lm.Total
				c.Exit, c.Path = nil, nil
			}
		}
		if inLoop && exits && !opts.DisableExit {
			nEx := opts.MaxStates
			if nEx-1 > prof.Local.K {
				nEx = prof.Local.K + 1
			}
			em := NewExitMachine(prof.Local.Table(int32(s)), prof.Local.K, nEx, ft.TakenExits)
			if r := missRate(em.Hits, em.Total); em.Total > 0 && r < bestRate {
				bestRate = r
				c.Kind, c.Exit, c.Hits, c.Total = KindExit, em, em.Hits, em.Total
				c.Loop, c.Path = nil, nil
			}
		}
		if !opts.DisablePath {
			pm := BestPathMachine(prof.Path, int32(s), opts.MaxStates, opts.MaxPathLen)
			if r := missRate(pm.Hits, pm.Total); pm.Total > 0 && r < bestRate {
				bestRate = r
				c.Kind, c.Path, c.Hits, c.Total = KindPath, pm, pm.Hits, pm.Total
				c.Loop, c.Exit = nil, nil
			}
		}
	}
	return out
}

func missRate(hits, total uint64) float64 {
	if total == 0 {
		return 1
	}
	return float64(total-hits) / float64(total)
}

// Aggregate sums choices into an overall (misses, total) pair — the Table 5
// rows.
func Aggregate(choices []Choice) (misses, total uint64) {
	for i := range choices {
		misses += choices[i].Misses()
		total += choices[i].Total
	}
	return misses, total
}
