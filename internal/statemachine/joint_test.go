package statemachine

import (
	"testing"

	"repro/internal/profile"
)

// mkLoopChoice builds a loop-machine Choice from an outcome string.
func mkLoopChoice(t *testing.T, site int32, outcomes string, n int) *Choice {
	t.Helper()
	lh := profile.NewLocalHistory(1, 9)
	st := profile.NewStreams(1)
	tm := term(0)
	for _, ch := range outcomes {
		lh.Branch(tm, ch == '1')
		st.Branch(tm, ch == '1')
	}
	m := BestLoopMachineExact(lh.Table(0), 9, n, st.Site(0))
	return &Choice{Site: site, Kind: KindLoop, Loop: m, Hits: m.Hits, Total: m.Total}
}

func TestJointRedundantComponentCollapses(t *testing.T) {
	// A branch whose machine predicts taken in every state carries no
	// information: its two states are Moore-equivalent, so the joint
	// machine with an alternating branch minimises from 2x2=4 to 2.
	redundant := &LoopMachine{
		States:    []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}},
		PredTaken: []bool{true, true},
		Init:      1,
	}
	a := &Choice{Site: 0, Kind: KindLoop, Loop: redundant}
	b := mkLoopChoice(t, 1, repeat("10", 200), 2)
	jm, err := BuildJoint([]*Choice{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(jm.Branches) != 2 {
		t.Fatalf("branches = %v", jm.Branches)
	}
	if jm.States != 2 {
		t.Fatalf("joint machine has %d states; want 2 (redundant component must merge)", jm.States)
	}
	// Behaviour must match the components: simulate both in lockstep.
	s := jm.Init
	s0, s1 := a.Loop.Init, b.Loop.Init
	for i := 0; i < 50; i++ {
		o := i%2 == 0
		if jm.Predict(s, 0) != a.Loop.PredTaken[s0] {
			t.Fatalf("step %d: joint prediction for branch 0 diverges", i)
		}
		if jm.Predict(s, 1) != b.Loop.PredTaken[s1] {
			t.Fatalf("step %d: joint prediction for branch 1 diverges", i)
		}
		s = jm.Next(s, 0, o)
		s0 = a.Loop.Next(s0, o)
		s = jm.Next(s, 1, o)
		s1 = b.Loop.Next(s1, o)
	}
}

func TestJointLockstepBranchesKeepMixedStates(t *testing.T) {
	// Two branches alternating in lockstep: between the two branch
	// executions the product is in a mixed state, so the joint machine
	// genuinely needs all four states — composition, not information
	// sharing, is what the product models.
	a := mkLoopChoice(t, 0, repeat("10", 200), 2)
	b := mkLoopChoice(t, 1, repeat("10", 200), 2)
	jm, err := BuildJoint([]*Choice{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if jm.States != 4 {
		t.Fatalf("lockstep joint = %d states, want 4", jm.States)
	}
}

func TestJointIndependentBranchesKeepProduct(t *testing.T) {
	// Alternating and period-3 branches share no information: the product
	// cannot shrink below the reachable product size.
	a := mkLoopChoice(t, 0, repeat("10", 300), 2)
	b := mkLoopChoice(t, 1, repeat("110", 300), 4)
	jm, err := BuildJoint([]*Choice{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if jm.States < 4 {
		t.Fatalf("independent branches collapsed to %d states — predictions must have merged wrongly", jm.States)
	}
	// Simulate: predictions always match the components.
	s := jm.Init
	s0, s1 := a.Loop.Init, b.Loop.Init
	for i := 0; i < 200; i++ {
		oa := i%2 == 0
		ob := i%3 != 2
		if jm.Predict(s, 0) != a.Loop.PredTaken[s0] || jm.Predict(s, 1) != b.Loop.PredTaken[s1] {
			t.Fatalf("step %d: joint prediction diverges", i)
		}
		s = jm.Next(s, 0, oa)
		s0 = a.Loop.Next(s0, oa)
		s = jm.Next(s, 1, ob)
		s1 = b.Loop.Next(s1, ob)
	}
}

func TestJointWithExitMachine(t *testing.T) {
	lh := profile.NewLocalHistory(1, 9)
	tm := term(0)
	for i := 0; i < 500; i++ {
		lh.Branch(tm, i%5 != 4)
	}
	em := NewExitMachine(lh.Table(0), 9, 5, false)
	exitChoice := &Choice{Site: 2, Kind: KindExit, Exit: em, Hits: em.Hits, Total: em.Total}
	loopChoice := mkLoopChoice(t, 3, repeat("10", 200), 2)
	jm, err := BuildJoint([]*Choice{exitChoice, loopChoice})
	if err != nil {
		t.Fatal(err)
	}
	if jm.States > 10 {
		t.Fatalf("joint of 5x2 machines has %d states", jm.States)
	}
	// Exercise transitions for both branch indices.
	s := jm.Init
	for i := 0; i < 30; i++ {
		s = jm.Next(s, 0, i%5 != 4)
		s = jm.Next(s, 1, i%2 == 0)
		if s < 0 || s >= jm.States {
			t.Fatal("transition escaped state space")
		}
	}
}

func TestJointRejectsPathAndEmpty(t *testing.T) {
	if _, err := BuildJoint(nil); err == nil {
		t.Fatal("empty joint must fail")
	}
	pc := &Choice{Site: 1, Kind: KindPath, Path: &PathMachine{}}
	if _, err := BuildJoint([]*Choice{pc}); err == nil {
		t.Fatal("path machines must be rejected")
	}
}

func TestJointNeverExceedsProduct(t *testing.T) {
	for _, pat := range []string{"10", "110", "1110"} {
		c1 := mkLoopChoice(t, 0, repeat(pat, 300), 4)
		c2 := mkLoopChoice(t, 1, repeat(pat, 300), 4)
		jm, err := BuildJoint([]*Choice{c1, c2})
		if err != nil {
			t.Fatal(err)
		}
		if jm.States > c1.Loop.NumStates()*c2.Loop.NumStates() {
			t.Fatalf("pattern %s: joint %d states exceeds the product", pat, jm.States)
		}
		if jm.Init < 0 || jm.Init >= jm.States {
			t.Fatalf("bad init %d", jm.Init)
		}
	}
}
