package statemachine

import (
	"fmt"
	"sort"
)

// JointMachine realises the paper's §6 future-work idea: when several
// branches of one loop are replicated, sequential application multiplies
// their state counts; a single machine over all the branches can represent
// the same predictions with fewer states. This implementation builds the
// product of the per-branch machines, then minimises it with Moore
// partition refinement (states with identical prediction vectors and
// equivalent successors merge) and prunes unreachable states. The product
// shrinks whenever a component carries redundant states — common when the
// machine search returns catch-all states that behave identically — or
// when transitions make parts of the product unreachable. (The paper
// proposes a branch-and-bound search for the true optimum; product +
// minimisation is the sound polynomial substitute. The complementary §6
// idea, predicting all loop branches from one shared history, corresponds
// to the correlated path machines, which already key on the interleaved
// branch stream.)
type JointMachine struct {
	// Branches lists the original branch sites, in the order used by
	// Predict and Next.
	Branches []int32
	// NumStates is the minimised state count.
	States int
	// Init is the initial state.
	Init int
	// preds[state][branchIdx] is the prediction of that branch in that
	// state; delta[state][branchIdx][outcome] the transition.
	preds [][]bool
	delta [][][2]int
}

// jointComponent adapts the two loop-replicable machine kinds.
type jointComponent struct {
	n    int
	init int
	pred func(state int) bool
	next func(state int, taken bool) int
}

func componentOf(c *Choice) (jointComponent, bool) {
	switch c.Kind {
	case KindLoop:
		m := c.Loop
		return jointComponent{
			n:    m.NumStates(),
			init: m.Init,
			pred: func(s int) bool { return m.PredTaken[s] },
			next: m.Next,
		}, true
	case KindExit:
		m := c.Exit
		return jointComponent{
			n:    m.NumStates(),
			init: 0,
			pred: func(s int) bool { return m.PredTaken[s] },
			next: m.Next,
		}, true
	}
	return jointComponent{}, false
}

// BuildJoint combines the loop/exit machine choices of branches that share
// one loop into a single minimised machine. Choices of other kinds are
// rejected. At least one choice is required.
func BuildJoint(choices []*Choice) (*JointMachine, error) {
	if len(choices) == 0 {
		return nil, fmt.Errorf("statemachine: joint machine needs at least one branch")
	}
	comps := make([]jointComponent, len(choices))
	sites := make([]int32, len(choices))
	for i, c := range choices {
		comp, ok := componentOf(c)
		if !ok {
			return nil, fmt.Errorf("statemachine: branch %d has %v machine; joint machines combine loop/exit only", c.Site, c.Kind)
		}
		comps[i] = comp
		sites[i] = c.Site
	}
	// Product states: mixed-radix tuples.
	total := 1
	for _, c := range comps {
		total *= c.n
		if total > 1<<20 {
			return nil, fmt.Errorf("statemachine: product machine too large (>%d states)", 1<<20)
		}
	}
	decode := func(s int) []int {
		out := make([]int, len(comps))
		for i := len(comps) - 1; i >= 0; i-- {
			out[i] = s % comps[i].n
			s /= comps[i].n
		}
		return out
	}
	encode := func(t []int) int {
		s := 0
		for i, c := range comps {
			s = s*c.n + t[i]
		}
		return s
	}
	preds := make([][]bool, total)
	delta := make([][][2]int, total)
	for s := 0; s < total; s++ {
		tup := decode(s)
		preds[s] = make([]bool, len(comps))
		delta[s] = make([][2]int, len(comps))
		for i, c := range comps {
			preds[s][i] = c.pred(tup[i])
			for d := 0; d < 2; d++ {
				nt := make([]int, len(tup))
				copy(nt, tup)
				nt[i] = c.next(tup[i], d == 1)
				delta[s][i][d] = encode(nt)
			}
		}
	}
	initTup := make([]int, len(comps))
	for i, c := range comps {
		initTup[i] = c.init
	}
	jm := &JointMachine{
		Branches: sites,
		States:   total,
		Init:     encode(initTup),
		preds:    preds,
		delta:    delta,
	}
	jm.minimize()
	jm.trimUnreachable()
	return jm, nil
}

// Predict returns the prediction for branch index bi in the given state.
func (jm *JointMachine) Predict(state, bi int) bool { return jm.preds[state][bi] }

// Next is the transition when branch index bi resolves with the outcome.
func (jm *JointMachine) Next(state, bi int, taken bool) int {
	d := 0
	if taken {
		d = 1
	}
	return jm.delta[state][bi][d]
}

// minimize merges Moore-equivalent states by partition refinement.
func (jm *JointMachine) minimize() {
	n := jm.States
	// Initial partition: by prediction vector.
	class := make([]int, n)
	sig := map[string]int{}
	for s := 0; s < n; s++ {
		key := fmt.Sprint(jm.preds[s])
		id, ok := sig[key]
		if !ok {
			id = len(sig)
			sig[key] = id
		}
		class[s] = id
	}
	for {
		next := map[string]int{}
		newClass := make([]int, n)
		for s := 0; s < n; s++ {
			key := fmt.Sprint(class[s])
			for bi := range jm.preds[s] {
				key += fmt.Sprintf(",%d:%d", class[jm.delta[s][bi][0]], class[jm.delta[s][bi][1]])
			}
			id, ok := next[key]
			if !ok {
				id = len(next)
				next[key] = id
			}
			newClass[s] = id
		}
		same := true
		for s := 0; s < n; s++ {
			if newClass[s] != class[s] {
				same = false
				break
			}
		}
		class = newClass
		if same {
			break
		}
	}
	// Rebuild over classes.
	nc := 0
	for s := 0; s < n; s++ {
		if class[s]+1 > nc {
			nc = class[s] + 1
		}
	}
	rep := make([]int, nc)
	for i := range rep {
		rep[i] = -1
	}
	for s := 0; s < n; s++ {
		if rep[class[s]] == -1 {
			rep[class[s]] = s
		}
	}
	preds := make([][]bool, nc)
	delta := make([][][2]int, nc)
	for cidx, s := range rep {
		preds[cidx] = jm.preds[s]
		delta[cidx] = make([][2]int, len(jm.preds[s]))
		for bi := range delta[cidx] {
			delta[cidx][bi][0] = class[jm.delta[s][bi][0]]
			delta[cidx][bi][1] = class[jm.delta[s][bi][1]]
		}
	}
	jm.preds = preds
	jm.delta = delta
	jm.Init = class[jm.Init]
	jm.States = nc
}

// trimUnreachable drops states the initial state can never reach.
func (jm *JointMachine) trimUnreachable() {
	seen := make([]bool, jm.States)
	stack := []int{jm.Init}
	seen[jm.Init] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for bi := range jm.delta[s] {
			for d := 0; d < 2; d++ {
				t := jm.delta[s][bi][d]
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	var order []int
	for s := 0; s < jm.States; s++ {
		if seen[s] {
			order = append(order, s)
		}
	}
	if len(order) == jm.States {
		return
	}
	sort.Ints(order)
	remap := make([]int, jm.States)
	for i, s := range order {
		remap[s] = i
	}
	preds := make([][]bool, len(order))
	delta := make([][][2]int, len(order))
	for i, s := range order {
		preds[i] = jm.preds[s]
		delta[i] = make([][2]int, len(jm.preds[s]))
		for bi := range delta[i] {
			delta[i][bi][0] = remap[jm.delta[s][bi][0]]
			delta[i][bi][1] = remap[jm.delta[s][bi][1]]
		}
	}
	jm.preds = preds
	jm.delta = delta
	jm.Init = remap[jm.Init]
	jm.States = len(order)
}
