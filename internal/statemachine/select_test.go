package statemachine

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
)

// buildProfile compiles and profiles a BL program.
func buildProfile(t *testing.T, src string) (*profile.Profile, []predict.SiteFeatures) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	n := prog.NumberBranches(true)
	prof := profile.New(n, profile.Options{})
	m := interp.New(prog)
	m.Hook = prof.Branch
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return prof, predict.Analyze(prog)
}

const mixedSrc = `
var seed int = 5;

func rnd() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

func main() int {
    var s int = 0;
    for var i int = 0; i < 4000; i = i + 1 {
        // alternating: loop machine material
        if i % 2 == 0 { s = s + 1; }
        // counted inner loop: exit machine material
        for var j int = 0; j < 3; j = j + 1 { s = s + j; }
        // correlated pair: path machine material
        var x int = 0;
        if (rnd() >> 5) % 2 == 0 { x = 1; }
        if x == 1 { s = s + 2; }
    }
    print(s);
    return s;
}`

func TestSelectPicksExpectedFamilies(t *testing.T) {
	prof, feats := buildProfile(t, mixedSrc)
	choices := Select(prof, feats, Options{MaxStates: 4, MaxPathLen: 1})
	byKind := map[Kind]int{}
	for i := range choices {
		byKind[choices[i].Kind]++
	}
	if byKind[KindLoop] == 0 {
		t.Error("no loop machine selected for the alternating branch")
	}
	if byKind[KindExit] == 0 {
		t.Error("no exit machine selected for the counted inner loop")
	}
	if byKind[KindPath] == 0 {
		t.Error("no path machine selected for the correlated branch")
	}
	// Every choice must be at least as good as profile on its own branch.
	for i := range choices {
		c := &choices[i]
		if c.Total == 0 {
			continue
		}
		profRate := missRate(c.ProfileHits, c.ProfileTotal)
		if missRate(c.Hits, c.Total) > profRate+1e-9 {
			t.Errorf("site %d: selected %v rate worse than profile", c.Site, c.Kind)
		}
		if c.NumStates() > 4 {
			t.Errorf("site %d: %d states exceeds budget", c.Site, c.NumStates())
		}
	}
}

func TestSelectDisables(t *testing.T) {
	prof, feats := buildProfile(t, mixedSrc)
	all := Select(prof, feats, Options{MaxStates: 4, MaxPathLen: 1})
	noLoop := Select(prof, feats, Options{MaxStates: 4, MaxPathLen: 1, DisableLoop: true})
	noPath := Select(prof, feats, Options{MaxStates: 4, MaxPathLen: 1, DisablePath: true})
	for i := range noLoop {
		if noLoop[i].Kind == KindLoop {
			t.Fatal("DisableLoop ignored")
		}
		if noPath[i].Kind == KindPath {
			t.Fatal("DisablePath ignored")
		}
	}
	am, at := Aggregate(all)
	nm, nt := Aggregate(noLoop)
	if float64(am)/float64(at) > float64(nm)/float64(nt)+1e-9 {
		t.Error("removing a family must not improve the aggregate")
	}
}

func TestSelectPaperCountingDiffers(t *testing.T) {
	prof, feats := buildProfile(t, mixedSrc)
	exact := Select(prof, feats, Options{MaxStates: 5, MaxPathLen: 1})
	paper := Select(prof, feats, Options{MaxStates: 5, MaxPathLen: 1, PaperCounting: true})
	if len(exact) != len(paper) {
		t.Fatal("selection lengths differ")
	}
	// Paper counting is an upper bound on the realizable score, so its
	// aggregated rate can only look equal or better.
	em, et := Aggregate(exact)
	pm, pt := Aggregate(paper)
	if float64(pm)/float64(pt) > float64(em)/float64(et)+0.01 {
		t.Errorf("paper counting (%.4f) looks worse than exact (%.4f)",
			float64(pm)/float64(pt), float64(em)/float64(et))
	}
}

func TestSelectGain(t *testing.T) {
	prof, feats := buildProfile(t, mixedSrc)
	choices := Select(prof, feats, Options{MaxStates: 4, MaxPathLen: 1})
	for i := range choices {
		c := &choices[i]
		if c.Kind != KindProfile && c.Gain() < 0 {
			t.Errorf("site %d: machine selected with negative gain %.1f", c.Site, c.Gain())
		}
	}
}

func TestSelectValidation(t *testing.T) {
	prof, feats := buildProfile(t, mixedSrc)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for MaxStates < 2")
		}
	}()
	Select(prof, feats, Options{MaxStates: 1})
}

func TestKindString(t *testing.T) {
	for k := KindProfile; k <= KindPath; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}
