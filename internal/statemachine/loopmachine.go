package statemachine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/profile"
)

// LoopMachine is an intra-loop branch prediction state machine: each state
// is a local-history pattern, the state set is complete (every history
// matches some state), and the transition on an outcome moves to the
// longest state matching the new (truncated) history. Replicated code
// realises one loop copy per state (Figure 1).
type LoopMachine struct {
	// States is sorted by (Len, Bits); the set is suffix-closed over its
	// base (either the two 1-bit catch-alls or the four 2-bit ones).
	States []Pattern
	// PredTaken[i] is state i's majority direction.
	PredTaken []bool
	// Init is the initial state index (the heaviest base state).
	Init int
	// Hits and Total score the machine against the profiled counts.
	Hits, Total uint64
}

// NumStates returns the machine size.
func (m *LoopMachine) NumStates() int { return len(m.States) }

// Rate is the misprediction rate in percent.
func (m *LoopMachine) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Total-m.Hits) / float64(m.Total)
}

// Misses is the mispredicted event count.
func (m *LoopMachine) Misses() uint64 { return m.Total - m.Hits }

// StateIndex returns the index of pattern p, or -1.
func (m *LoopMachine) StateIndex(p Pattern) int {
	for i, q := range m.States {
		if q == p {
			return i
		}
	}
	return -1
}

// Next is the transition function: from state i with the given outcome,
// move to the longest state matching the new truncated history. The state
// set's completeness guarantees a match.
func (m *LoopMachine) Next(i int, taken bool) int {
	j, ok := m.NextIndex(i, taken)
	if !ok {
		panic(fmt.Sprintf("statemachine: incomplete state set %v lacks match for %v", m.States, m.States[i].Shift(taken)))
	}
	return j
}

// NextIndex is the non-panicking transition function: it reports false when
// the state set is incomplete (no state matches the shifted history), which
// well-formedness analyses diagnose instead of crashing.
func (m *LoopMachine) NextIndex(i int, taken bool) (int, bool) {
	cand := m.States[i].Shift(taken)
	best := -1
	var bestLen uint8
	for j, q := range m.States {
		if q.Len <= cand.Len && q.IsSuffixOf(cand) {
			if best == -1 || q.Len > bestLen {
				best, bestLen = j, q.Len
			}
		}
	}
	if best == -1 {
		return -1, false
	}
	return best, true
}

func (m *LoopMachine) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop machine %d states:", len(m.States))
	for i, s := range m.States {
		d := "N"
		if m.PredTaken[i] {
			d = "T"
		}
		fmt.Fprintf(&sb, " %v→%s", s, d)
		if i == m.Init {
			sb.WriteString("*")
		}
	}
	return sb.String()
}

// scoreStates computes longest-match hits for a complete pattern set:
// eff(p) = cnt(p) − cnt(p extended by 0, if a state) − cnt(p extended by 1,
// if a state); hits = Σ max(effTaken, effNotTaken). It also returns the
// per-state majority directions.
func scoreStates(t *CountTree, states []Pattern) (hits, total uint64, preds []bool) {
	inSet := func(q Pattern) bool {
		for _, s := range states {
			if s == q {
				return true
			}
		}
		return false
	}
	preds = make([]bool, len(states))
	for i, p := range states {
		eff := t.Count(p)
		for _, d := range [2]bool{false, true} {
			ext := p.Extend(d)
			if int(ext.Len) <= t.K && inSet(ext) {
				c := t.Count(ext)
				eff.Taken -= c.Taken
				eff.NotTaken -= c.NotTaken
			}
		}
		preds[i] = eff.MajorityTaken()
		hits += eff.Hits()
		total += eff.Total()
	}
	return hits, total, preds
}

// scoreStatesFast computes only the hit count, allocation-free; the search
// inner loop uses it before materialising full machines for the leaders.
func scoreStatesFast(t *CountTree, states []Pattern) (hits uint64) {
	inSet := func(q Pattern) bool {
		for _, s := range states {
			if s == q {
				return true
			}
		}
		return false
	}
	for _, p := range states {
		eff := t.Count(p)
		for _, d := range [2]bool{false, true} {
			ext := p.Extend(d)
			if int(ext.Len) <= t.K && inSet(ext) {
				c := t.Count(ext)
				eff.Taken -= c.Taken
				eff.NotTaken -= c.NotTaken
			}
		}
		hits += eff.Hits()
	}
	return hits
}

// BestLoopMachine searches exhaustively for the n-state machine with the
// most correct predictions for one branch, given its k-bit pattern table
// (tab may be nil for a never-profiled branch, in which case the machine
// degenerates to catch-all states with zero counts). Machines are built
// over two bases, both drawn in the paper: the two 1-bit catch-all states
// (Figure 2) and, when n ≥ 4, the four 2-bit catch-all states (Figure 3);
// each base grows by suffix-closed extension up to history length
// min(n-1, k).
//
// n must be at least 2. A 2-state machine is exactly the 1-bit history
// scheme.
func BestLoopMachine(tab []profile.Pair, k, n int) *LoopMachine {
	if n < 2 {
		panic(fmt.Sprintf("statemachine: loop machine needs >= 2 states, got %d", n))
	}
	if k < 1 {
		panic("statemachine: history length must be >= 1")
	}
	t := NewCountTree(tab, k)
	maxLen := n - 1
	if maxLen > k {
		maxLen = k
	}

	var best *LoopMachine
	consider := func(states []Pattern) {
		hits := scoreStatesFast(t, states)
		if best == nil || hits > best.Hits {
			cp := make([]Pattern, len(states))
			copy(cp, states)
			sortPatterns(cp)
			// Rescore in sorted order so PredTaken aligns with States.
			h2, t2, p2 := scoreStates(t, cp)
			best = &LoopMachine{States: cp, PredTaken: p2, Hits: h2, Total: t2}
		}
	}

	base1 := []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}}
	enumerateSuffixClosed(base1, n, maxLen, consider)
	if n >= 4 && maxLen >= 2 && k >= 2 {
		base2 := []Pattern{
			{Bits: 0, Len: 2}, {Bits: 1, Len: 2},
			{Bits: 2, Len: 2}, {Bits: 3, Len: 2},
		}
		enumerateSuffixClosed(base2, n, maxLen, consider)
	}
	best.Init = initialState(t, best.States)
	return best
}

// delta builds the dense transition table of the machine.
func (m *LoopMachine) delta() [][2]int {
	d := make([][2]int, len(m.States))
	for i := range m.States {
		d[i][0] = m.Next(i, false)
		d[i][1] = m.Next(i, true)
	}
	return d
}

// Rescore replays the branch's full outcome stream through the machine
// with exact automaton semantics, recomputing the per-state majority
// predictions, Hits, and Total from what the machine really sees. This is
// stricter than the longest-match table counting: a replicated machine only
// knows as much history as its current state label, so it can idle in a
// short state while a longer pattern matches the true history. The paper's
// counting ignores that effect; measured results come from Rescore.
func (m *LoopMachine) Rescore(st *profile.Stream) {
	d := m.delta()
	counts := make([]profile.Pair, len(m.States))
	s := m.Init
	for i, n := 0, st.Len(); i < n; i++ {
		o := st.Get(i)
		counts[s].Add(o)
		if o {
			s = d[s][1]
		} else {
			s = d[s][0]
		}
	}
	m.Hits, m.Total = 0, 0
	for i, c := range counts {
		m.PredTaken[i] = c.MajorityTaken()
		m.Hits += c.Hits()
		m.Total += c.Total()
	}
}

// BestLoopMachineExact searches like BestLoopMachine but scores the top
// candidate sets by exact stream replay (Rescore) and returns the machine
// that is actually best when realised as replicated code. The table-based
// score is used as the search heuristic; the topK (here 12) candidates are
// replayed.
func BestLoopMachineExact(tab []profile.Pair, k, n int, st *profile.Stream) *LoopMachine {
	if st == nil || st.Len() == 0 {
		return BestLoopMachine(tab, k, n)
	}
	t := NewCountTree(tab, k)
	maxLen := n - 1
	if maxLen > k {
		maxLen = k
	}
	const topK = 12
	type cand struct {
		hits   uint64
		states []Pattern
	}
	var top []cand
	consider := func(states []Pattern) {
		hits := scoreStatesFast(t, states)
		if len(top) == topK && hits <= top[topK-1].hits {
			return
		}
		cp := make([]Pattern, len(states))
		copy(cp, states)
		sortPatterns(cp)
		c := cand{hits: hits, states: cp}
		pos := len(top)
		for pos > 0 && top[pos-1].hits < hits {
			pos--
		}
		top = append(top, cand{})
		copy(top[pos+1:], top[pos:])
		top[pos] = c
		if len(top) > topK {
			top = top[:topK]
		}
	}
	base1 := []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}}
	enumerateSuffixClosed(base1, n, maxLen, consider)
	if n >= 4 && maxLen >= 2 && k >= 2 {
		base2 := []Pattern{
			{Bits: 0, Len: 2}, {Bits: 1, Len: 2},
			{Bits: 2, Len: 2}, {Bits: 3, Len: 2},
		}
		enumerateSuffixClosed(base2, n, maxLen, consider)
	}
	// The table score is an optimistic proxy; the realizable optimum is
	// often a chain machine (Figures 2 and 5) that the proxy under-ranks,
	// so the canonical chains are always replayed too.
	for _, states := range canonicalSets(n, maxLen) {
		top = append(top, cand{states: states})
	}
	var best *LoopMachine
	for _, c := range top {
		_, _, preds := scoreStates(t, c.states)
		m := &LoopMachine{States: c.states, PredTaken: preds}
		m.Init = initialState(t, m.States)
		m.Rescore(st)
		if best == nil || m.Hits > best.Hits {
			best = m
		}
	}
	return best
}

// canonicalSets returns replay-friendly standard state sets of exactly n
// states: the run-length chains of both polarities (the paper's Figure 2
// and Figure 5 shapes) and, when n allows, the complete suffix tree over
// two levels.
func canonicalSets(n, maxLen int) [][]Pattern {
	var out [][]Pattern
	// Run chains: {0,1,01,011,...} — each longer state remembers one more
	// trailing "stay" outcome. Build both polarities.
	for _, stay := range []uint32{1, 0} {
		states := []Pattern{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}}
		// pattern: (1-stay) followed by k stays, oldest first:
		// bits low k = stay value, bit k = 1-stay.
		for k := 1; len(states) < n && k < maxLen; k++ {
			var p Pattern
			p.Len = uint8(k + 1)
			for b := 0; b < k; b++ {
				p.Bits |= stay << uint(b)
			}
			p.Bits |= (1 - stay) << uint(k)
			states = append(states, p)
		}
		if len(states) == n {
			cp := make([]Pattern, n)
			copy(cp, states)
			sortPatterns(cp)
			out = append(out, cp)
		}
	}
	// Complete two-level tree {0,1,00,01,10,11} when it fits exactly.
	if n == 6 && maxLen >= 2 {
		out = append(out, []Pattern{
			{Bits: 0, Len: 1}, {Bits: 1, Len: 1},
			{Bits: 0, Len: 2}, {Bits: 1, Len: 2},
			{Bits: 2, Len: 2}, {Bits: 3, Len: 2},
		})
	}
	return out
}

// initialState picks the heaviest base (shortest-length) state as the
// entry state of the machine.
func initialState(t *CountTree, states []Pattern) int {
	baseLen := states[0].Len
	for _, p := range states {
		if p.Len < baseLen {
			baseLen = p.Len
		}
	}
	best, bestCnt := -1, uint64(0)
	for i, p := range states {
		if p.Len != baseLen {
			continue
		}
		c := t.Count(p).Total()
		if best == -1 || c > bestCnt {
			best, bestCnt = i, c
		}
	}
	return best
}

func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Len != ps[j].Len {
			return ps[i].Len < ps[j].Len
		}
		return ps[i].Bits < ps[j].Bits
	})
}

// enumerateSuffixClosed enumerates every suffix-closed superset of base
// with exactly n states and patterns no longer than maxLen, invoking
// consider on each. Each set is produced exactly once via ordered frontier
// expansion.
func enumerateSuffixClosed(base []Pattern, n, maxLen int, consider func([]Pattern)) {
	if len(base) > n {
		return
	}
	set := make([]Pattern, len(base), n)
	copy(set, base)
	var frontier []Pattern
	for _, p := range base {
		if int(p.Len) < maxLen {
			frontier = append(frontier, p.Extend(false), p.Extend(true))
		}
	}
	var rec func(frontier []Pattern, remaining int)
	rec = func(frontier []Pattern, remaining int) {
		if remaining == 0 {
			consider(set)
			return
		}
		for i, cand := range frontier {
			set = append(set, cand)
			next := make([]Pattern, 0, len(frontier)-i-1+2)
			next = append(next, frontier[i+1:]...)
			if int(cand.Len) < maxLen {
				next = append(next, cand.Extend(false), cand.Extend(true))
			}
			rec(next, remaining-1)
			set = set[:len(set)-1]
		}
	}
	rec(frontier, n-len(base))
}
