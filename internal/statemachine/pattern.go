// Package statemachine implements the paper's central contribution
// (section 4): compact branch prediction state machines derived from
// profiled pattern tables. Three families are provided, matching the
// paper's taxonomy:
//
//   - intra-loop machines: states are local-history patterns forming a
//     suffix-closed set (generalising Figures 2–4), found by exhaustive
//     search over the pattern table;
//   - loop-exit machines: iteration-count chains with a saturating top
//     state (Figure 5);
//   - correlated machines: sets of branch paths with a catch-all state,
//     found by greedy search (section 4.3).
//
// Every machine is scored with longest-suffix-match counting ("taking care
// that patterns are counted not more than once"): the events attributed to
// a state p are cnt(p) minus the counts of p's one-bit-older extensions
// that are also states.
package statemachine

import (
	"fmt"
	"strings"

	"repro/internal/profile"
)

// Pattern is a branch-history pattern: Len recent outcomes of one branch,
// bit 0 the most recent, 1 = taken. A pattern "matches" a history whose low
// Len bits equal Bits; longer patterns carry older information.
type Pattern struct {
	Bits uint32
	Len  uint8
}

// Extend returns the pattern with one additional older outcome d.
func (p Pattern) Extend(taken bool) Pattern {
	b := p.Bits
	if taken {
		b |= 1 << p.Len
	}
	return Pattern{Bits: b, Len: p.Len + 1}
}

// Shift returns the pattern observed after outcome d follows history p,
// truncated to knowledge Len+1: the machine-transition candidate.
func (p Pattern) Shift(taken bool) Pattern {
	b := p.Bits << 1
	if taken {
		b |= 1
	}
	return Pattern{Bits: b & ((1 << (p.Len + 1)) - 1), Len: p.Len + 1}
}

// IsSuffixOf reports whether p is a (non-strict) suffix of q: q's most
// recent Len outcomes equal p.
func (p Pattern) IsSuffixOf(q Pattern) bool {
	return p.Len <= q.Len && q.Bits&((1<<p.Len)-1) == p.Bits
}

// Suffix returns p's most recent n outcomes.
func (p Pattern) Suffix(n uint8) Pattern {
	if n >= p.Len {
		return p
	}
	return Pattern{Bits: p.Bits & ((1 << n) - 1), Len: n}
}

// String renders the pattern oldest-first, the way the paper draws state
// labels ("011" = not-taken then taken twice).
func (p Pattern) String() string {
	if p.Len == 0 {
		return "ε"
	}
	var sb strings.Builder
	for i := int(p.Len) - 1; i >= 0; i-- {
		if p.Bits&(1<<uint(i)) != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParsePattern parses the String form (oldest-first bit string).
func ParsePattern(s string) (Pattern, error) {
	if len(s) == 0 || len(s) > 32 {
		return Pattern{}, fmt.Errorf("statemachine: bad pattern %q", s)
	}
	var p Pattern
	p.Len = uint8(len(s))
	for i, ch := range s {
		switch ch {
		case '1':
			p.Bits |= 1 << uint(len(s)-1-i)
		case '0':
		default:
			return Pattern{}, fmt.Errorf("statemachine: bad pattern %q", s)
		}
	}
	return p, nil
}

// CountTree holds cnt(p) for every pattern length 1..K, folded down from a
// site's K-bit pattern table. cnt(p) is the (taken, not-taken) pair summed
// over all K-bit histories that p matches.
type CountTree struct {
	K int
	// levels[l-1][bits] is cnt of the length-l pattern with those bits.
	levels [][]profile.Pair
}

// NewCountTree folds a K-bit pattern table (len 1<<k, may be nil) into
// per-length counts.
func NewCountTree(tab []profile.Pair, k int) *CountTree {
	t := &CountTree{K: k, levels: make([][]profile.Pair, k)}
	top := make([]profile.Pair, 1<<uint(k))
	copy(top, tab)
	t.levels[k-1] = top
	for l := k - 1; l >= 1; l-- {
		cur := make([]profile.Pair, 1<<uint(l))
		above := t.levels[l]
		for b, p := range above {
			cur[b&((1<<uint(l))-1)].Merge(p)
		}
		t.levels[l-1] = cur
	}
	return t
}

// Count returns cnt(p). Patterns longer than K have no information and
// panic: the caller must cap machine depth at the profile's history length.
func (t *CountTree) Count(p Pattern) profile.Pair {
	if p.Len == 0 {
		// ε matches everything.
		var total profile.Pair
		for _, q := range t.levels[0] {
			total.Merge(q)
		}
		return total
	}
	if int(p.Len) > t.K {
		panic(fmt.Sprintf("statemachine: pattern %v longer than profile history %d", p, t.K))
	}
	return t.levels[p.Len-1][p.Bits]
}

// Total is the number of profiled events in the tree.
func (t *CountTree) Total() uint64 {
	var n uint64
	for _, p := range t.levels[0] {
		n += p.Total()
	}
	return n
}
