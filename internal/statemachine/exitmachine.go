package statemachine

import (
	"fmt"

	"repro/internal/profile"
)

// ExitMachine is the loop-exit branch state machine of Figure 5: state i
// (0 ≤ i < N-1) means "the loop has run i iterations since the last exit";
// the top state N-1 is a saturating catch-all for longer runs. An exit
// outcome returns to state 0, which is also the machine's initial state
// ("the loop exit in the last execution").
//
// With the history normalised so that 0 = exit and 1 = stay, the states are
// the patterns 0, 01, 011, …, 01^(N-2) plus the all-ones catch-all 1^(N-1):
// a disjoint, complete partition, so each state's counts come straight from
// the pattern table. Even/odd iteration alternation (the paper's Figure 5
// observation) shows up as opposite majorities in adjacent states and is
// captured automatically.
type ExitMachine struct {
	// N is the state count (≥ 2).
	N int
	// ExitTaken reports which branch direction leaves the loop.
	ExitTaken bool
	// PredTaken[i] is state i's majority direction (in raw, unnormalised
	// branch polarity).
	PredTaken []bool
	// Hits and Total score the machine against the profiled counts.
	Hits, Total uint64
}

// NewExitMachine scores the N-state exit machine for a branch with the
// given k-bit pattern table (raw polarity) whose exit direction is
// exitTaken. Requires N-1 ≤ k so the top state is observable.
func NewExitMachine(tab []profile.Pair, k, n int, exitTaken bool) *ExitMachine {
	if n < 2 {
		panic(fmt.Sprintf("statemachine: exit machine needs >= 2 states, got %d", n))
	}
	if n-1 > k {
		panic(fmt.Sprintf("statemachine: %d-state exit machine needs %d-bit history, have %d", n, n-1, k))
	}
	t := NewCountTree(tab, k)
	m := &ExitMachine{N: n, ExitTaken: exitTaken, PredTaken: make([]bool, n)}
	// normalise: "stay" bit value in raw history.
	stay := uint32(1)
	if exitTaken {
		stay = 0
	}
	for i := 0; i < n; i++ {
		var p Pattern
		if i < n-1 {
			// i stay-outcomes then one exit: low i bits = stay value,
			// bit i = exit value.
			p.Len = uint8(i + 1)
			for b := 0; b < i; b++ {
				p.Bits |= stay << uint(b)
			}
			p.Bits |= (1 - stay) << uint(i)
		} else {
			// top state: N-1 consecutive stay outcomes.
			p.Len = uint8(n - 1)
			for b := 0; b < n-1; b++ {
				p.Bits |= stay << uint(b)
			}
		}
		c := t.Count(p)
		m.PredTaken[i] = c.MajorityTaken()
		m.Hits += c.Hits()
		m.Total += c.Total()
	}
	return m
}

// Next is the transition function.
func (m *ExitMachine) Next(i int, taken bool) int {
	if taken == m.ExitTaken {
		return 0
	}
	if i+1 < m.N-1 {
		return i + 1
	}
	return m.N - 1
}

// NumStates returns the machine size.
func (m *ExitMachine) NumStates() int { return m.N }

// Misses is the mispredicted event count.
func (m *ExitMachine) Misses() uint64 { return m.Total - m.Hits }

// Rate is the misprediction rate in percent.
func (m *ExitMachine) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Misses()) / float64(m.Total)
}

func (m *ExitMachine) String() string {
	return fmt.Sprintf("exit machine %d states (exitTaken=%v) rate=%.2f%%", m.N, m.ExitTaken, m.Rate())
}
