package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/profile"
)

// PathMachine is a correlated-branch state machine (section 4.3): its
// states are paths of preceding branches leading to the predicted branch,
// plus one catch-all state for control flow matching none of the chosen
// paths. Prediction uses longest-suffix matching over the path, mirroring
// the tail-duplication the replicator performs.
type PathMachine struct {
	// Paths are the chosen path states, longest-match semantics, sorted
	// by descending length then key for determinism.
	Paths []profile.PathKey
	// PredTaken[i] is the majority direction under path i.
	PredTaken []bool
	// CatchPred is the prediction of the catch-all state.
	CatchPred bool
	// StatePairs[i] holds the outcome counts attributed to path i, and
	// CatchPair those of the catch-all; the replicator folds the counts of
	// unroutable states back into the catch-all to re-derive its
	// prediction.
	StatePairs []profile.Pair
	CatchPair  profile.Pair
	// Hits and Total score the machine.
	Hits, Total uint64
}

// NumStates counts the paths plus the catch-all.
func (m *PathMachine) NumStates() int { return len(m.Paths) + 1 }

// Misses is the mispredicted event count.
func (m *PathMachine) Misses() uint64 { return m.Total - m.Hits }

// Rate is the misprediction rate in percent.
func (m *PathMachine) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Misses()) / float64(m.Total)
}

// Match returns the index of the longest chosen path that is a suffix of
// key, or -1 for the catch-all.
func (m *PathMachine) Match(key profile.PathKey) int {
	best, bestLen := -1, -1
	for i, p := range m.Paths {
		l := p.Len()
		if l > bestLen && key.Suffix(l) == p {
			best, bestLen = i, l
		}
	}
	return best
}

// Predict returns the machine's prediction for an occurrence with the
// given path key.
func (m *PathMachine) Predict(key profile.PathKey) bool {
	if i := m.Match(key); i >= 0 {
		return m.PredTaken[i]
	}
	return m.CatchPred
}

func (m *PathMachine) String() string {
	s := fmt.Sprintf("path machine %d states rate=%.2f%%:", m.NumStates(), m.Rate())
	for i, p := range m.Paths {
		d := "N"
		if m.PredTaken[i] {
			d = "T"
		}
		s += fmt.Sprintf(" %v→%s", p, d)
	}
	d := "N"
	if m.CatchPred {
		d = "T"
	}
	return s + " *→" + d
}

// scorePathSet computes longest-match hits for a set of paths plus
// catch-all over the site's full-length path table.
func scorePathSet(full map[profile.PathKey]*profile.Pair, paths []profile.PathKey) (hits, total uint64, preds []bool, catchPred bool) {
	eff := make([]profile.Pair, len(paths))
	var catchAll profile.Pair
	for key, pr := range full {
		best, bestLen := -1, -1
		for i, p := range paths {
			l := p.Len()
			if l > bestLen && key.Suffix(l) == p {
				best, bestLen = i, l
			}
		}
		if best >= 0 {
			eff[best].Merge(*pr)
		} else {
			catchAll.Merge(*pr)
		}
	}
	preds = make([]bool, len(paths))
	for i, e := range eff {
		preds[i] = e.MajorityTaken()
		hits += e.Hits()
		total += e.Total()
	}
	catchPred = catchAll.MajorityTaken()
	hits += catchAll.Hits()
	total += catchAll.Total()
	return hits, total, preds, catchPred
}

// BestPathMachine builds an n-state correlated machine for one branch site
// by greedy search with exact incremental rescoring: starting from the lone
// catch-all, repeatedly add the candidate path (any suffix length up to the
// profile's maximum and at most maxPathLen) that increases correct
// predictions the most. The paper caps the path length at the state count
// to keep replication small; pass maxPathLen ≤ 0 to use the profile's
// maximum.
//
// Greedy is our stand-in for the paper's unspecified "set of those paths
// which give the lowest misprediction" search; gains are computed exactly
// under longest-suffix-match semantics via a candidate→keys index, so each
// round costs O(total index size).
func BestPathMachine(h *profile.PathHistory, site int32, n, maxPathLen int) *PathMachine {
	if n < 1 {
		panic("statemachine: path machine needs >= 1 state")
	}
	if n > 16 {
		n = 16 // bounded by the fixed-size per-state accumulators below
	}
	full := h.Table(site)
	maxLen := h.M
	if maxPathLen > 0 && maxPathLen < maxLen {
		maxLen = maxPathLen
	}
	// Flatten the table and index candidates: candIdx[c] lists the keys
	// having candidate path c as a suffix.
	keys := make([]profile.PathKey, 0, len(full))
	pairs := make([]profile.Pair, 0, len(full))
	for k, pr := range full {
		keys = append(keys, k)
		pairs = append(pairs, *pr)
	}
	// Deterministic key order (map iteration is random).
	ord := make([]int, len(keys))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return keys[ord[a]] < keys[ord[b]] })
	sortedKeys := make([]profile.PathKey, len(keys))
	sortedPairs := make([]profile.Pair, len(keys))
	for i, j := range ord {
		sortedKeys[i] = keys[j]
		sortedPairs[i] = pairs[j]
	}
	keys, pairs = sortedKeys, sortedPairs

	candKeys := make(map[profile.PathKey][]int32)
	for i, k := range keys {
		kl := k.Len()
		for l := 1; l <= maxLen && l <= kl; l++ {
			s := k.Suffix(l)
			candKeys[s] = append(candKeys[s], int32(i))
		}
	}
	cands := make([]profile.PathKey, 0, len(candKeys))
	for c := range candKeys {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })

	// Greedy state: per-key current match length (0 = catch-all) and
	// per-state effective pairs. State index 0 is the catch-all.
	curLen := make([]int, len(keys))
	assign := make([]int, len(keys)) // state index; 0 = catch-all
	eff := []profile.Pair{{}}        // eff[0] = catch-all
	chosen := []profile.PathKey{}
	for i := range pairs {
		eff[0].Merge(pairs[i])
	}
	hitsOf := func(p profile.Pair) uint64 { return p.Hits() }
	totalHits := hitsOf(eff[0])

	taken := make(map[profile.PathKey]bool)
	for len(chosen)+1 < n {
		var bestCand profile.PathKey
		bestGain := int64(0)
		found := false
		for _, c := range cands {
			if taken[c] {
				continue
			}
			cl := c.Len()
			// Compute the exact hit delta of adding c.
			var movedFrom [16]profile.Pair // per affected state (≤ n states)
			var movedAny [16]bool
			var movedTotal profile.Pair
			for _, ki := range candKeys[c] {
				if curLen[ki] >= cl {
					continue
				}
				s := assign[ki]
				movedFrom[s].Merge(pairs[ki])
				movedAny[s] = true
				movedTotal.Merge(pairs[ki])
			}
			if movedTotal.Total() == 0 {
				continue
			}
			delta := int64(hitsOf(movedTotal))
			for s := range movedAny {
				if !movedAny[s] {
					continue
				}
				before := eff[s]
				after := profile.Pair{
					Taken:    before.Taken - movedFrom[s].Taken,
					NotTaken: before.NotTaken - movedFrom[s].NotTaken,
				}
				delta += int64(hitsOf(after)) - int64(hitsOf(before))
			}
			if delta > bestGain {
				bestGain = delta
				bestCand = c
				found = true
			}
		}
		if !found {
			break // no candidate helps; fewer states suffice
		}
		// Apply the winner.
		taken[bestCand] = true
		chosen = append(chosen, bestCand)
		sidx := len(eff)
		eff = append(eff, profile.Pair{})
		cl := bestCand.Len()
		for _, ki := range candKeys[bestCand] {
			if curLen[ki] >= cl {
				continue
			}
			s := assign[ki]
			eff[s].Taken -= pairs[ki].Taken
			eff[s].NotTaken -= pairs[ki].NotTaken
			eff[sidx].Merge(pairs[ki])
			assign[ki] = sidx
			curLen[ki] = cl
		}
		totalHits = 0
		for _, e := range eff {
			totalHits += hitsOf(e)
		}
	}

	// Assemble the machine: longest paths first for deterministic
	// longest-match iteration.
	type st struct {
		key  profile.PathKey
		pair profile.Pair
	}
	sts := make([]st, len(chosen))
	for i, c := range chosen {
		sts[i] = st{key: c, pair: eff[i+1]}
	}
	sort.Slice(sts, func(a, b int) bool {
		if sts[a].key.Len() != sts[b].key.Len() {
			return sts[a].key.Len() > sts[b].key.Len()
		}
		return sts[a].key < sts[b].key
	})
	m := &PathMachine{CatchPred: eff[0].MajorityTaken(), CatchPair: eff[0], Hits: totalHits}
	for _, s := range sts {
		m.Paths = append(m.Paths, s.key)
		m.PredTaken = append(m.PredTaken, s.pair.MajorityTaken())
		m.StatePairs = append(m.StatePairs, s.pair)
	}
	for _, p := range pairs {
		m.Total += p.Total()
	}
	return m
}
