GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench benchjson compare throughput cluster profile fuzz check golden serve loadcheck ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine's tests (worker pool, single-flight cache,
# parallel/sequential determinism) are the main race-detector targets.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE .

# Refresh the committed throughput baseline: the full sweep, the service
# throughput harness, and the multi-node scaling round, all into
# BENCH_results.json. The format is documented in EXPERIMENTS.md;
# `make compare` gates against this file.
benchjson:
	$(GO) run ./cmd/krallbench -all -execbench -tracebench -benchjson BENCH_results.json > /dev/null
	$(GO) run ./cmd/krallload -serve -throughput -quiet -benchjson BENCH_results.json
	$(GO) run ./cmd/krallload -throughput -nodes 4 -noderps 400 -requests 1024 -quiet -benchjson BENCH_results.json

# Measure single vs batched kralld requests/sec over a loopback server.
throughput:
	$(GO) run ./cmd/krallload -serve -throughput

# Multi-node scaling: one rate-capped kralld process vs a 4-process
# consistent-hash cluster of them, reporting aggregate req/s scaling.
cluster:
	$(GO) run ./cmd/krallload -throughput -nodes 4 -noderps 400 -requests 1024

# Bench-regression gate: measure the working tree into bench-new.json and
# fail if throughput dropped >15% below the committed baseline.
compare:
	$(GO) run ./cmd/krallbench -all -execbench -benchjson bench-new.json > /dev/null
	$(GO) run ./cmd/krallload -serve -throughput -quiet -benchjson bench-new.json
	$(GO) run ./cmd/krallload -throughput -nodes 4 -noderps 400 -requests 1024 -quiet -benchjson bench-new.json
	$(GO) run ./cmd/krallbench -compare BENCH_results.json bench-new.json -tolerance 0.15

# CPU/heap profiles of the full krallbench sweep; inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/krallbench -all -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null

# Short smoke of the BL front-end fuzzer; crashers land in
# internal/lang/testdata/fuzz. Raise FUZZTIME for a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/lang

# Static analysis: lint the example programs and verify that replicating
# each one preserves replication equivalence (krallcheck), then fuzz the
# verifier for false positives on generated programs.
check:
	$(GO) run ./cmd/krallcheck examples/bl/*.bl
	$(GO) test -run='^$$' -fuzz=FuzzVerify -fuzztime=$(FUZZTIME) ./internal/analysis

# Regenerate the committed krallbench golden files after an intended
# output change. The service's golden JSON responses regenerate the same
# way: `go test ./internal/service -run TestGolden -update`.
golden:
	$(GO) test ./cmd/krallbench -run TestGolden -update
	$(GO) test ./internal/service -run TestGolden -update

# Run the prediction service; see SERVICE.md for the API.
serve:
	$(GO) run ./cmd/kralld -addr :8723

# Boot kralld on a loopback port, drive every endpoint with the load
# client (asserting byte-stable responses and 429 backpressure), and
# leave a /metrics snapshot in kralld-metrics.txt.
loadcheck:
	$(GO) run ./cmd/kralld -selfcheck -quiet -metrics-out kralld-metrics.txt

ci:
	./ci.sh
