// Machines: visualise the branch prediction state machines the search
// builds for characteristic branch behaviours — the paper's Figures 2-5 as
// living objects — and compare the paper's optimistic pattern counting
// against exact automaton replay.
//
//	go run ./examples/machines
package main

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

// behaviours that exercise each machine family.
var behaviours = []struct {
	name    string
	desc    string
	outcome func(i int) bool
}{
	{"alternating", "T,N,T,N,... (Figure 1's loop)", func(i int) bool { return i%2 == 0 }},
	{"period-3", "T,T,N repeating", func(i int) bool { return i%3 != 2 }},
	{"count-4 loop", "4 iterations then exit (Figure 5)", func(i int) bool { return i%5 != 4 }},
	{"bursty", "runs of 8 taken / 8 not taken", func(i int) bool { return (i/8)%2 == 0 }},
	{"biased", "taken 7 times in 8, pseudo-randomly", func(i int) bool {
		x := uint32(i) * 2654435761
		return x%8 != 0
	}},
}

func main() {
	fmt.Println("branch prediction state machines for characteristic behaviours")
	for _, b := range behaviours {
		lh := profile.NewLocalHistory(1, 9)
		st := &profile.Streams{}
		*st = *profile.NewStreams(1)
		t := &ir.Term{Op: ir.TermBr, Site: 0, Orig: 0}
		const events = 30000
		for i := 0; i < events; i++ {
			o := b.outcome(i)
			lh.Branch(t, o)
			st.Branch(t, o)
		}
		fmt.Printf("\n%s — %s\n", b.name, b.desc)
		prof := profile.Pair{}
		for _, p := range lh.Project(0, 1) {
			prof.Merge(p)
		}
		fmt.Printf("  profile majority:   %5.2f%% mispredicted\n",
			100*float64(prof.Misses())/float64(prof.Total()))
		for _, n := range []int{2, 3, 5} {
			paper := statemachine.BestLoopMachine(lh.Table(0), 9, n)
			exact := statemachine.BestLoopMachineExact(lh.Table(0), 9, n, st.Site(0))
			fmt.Printf("  %d states:  counting %5.2f%%  replayed %5.2f%%   %v\n",
				n, paper.Rate(), exact.Rate(), exact)
		}
		// The exit-machine view of the same stream (exit = not taken).
		em := statemachine.NewExitMachine(lh.Table(0), 9, 6, false)
		fmt.Printf("  exit machine (6 states): %5.2f%%  preds=%v\n", em.Rate(), em.PredTaken)
	}
}
