// Consumers: the compiler optimisations the paper's prediction feeds —
// Pettis–Hansen code positioning and superblock (trace) formation — run on
// one workload before and after code replication, showing that replication
// both lays out better and gives a scheduler more straight-line scope.
//
//	go run ./examples/consumers [-workload NAME]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/statemachine"
	"repro/internal/superblock"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "scheduler", "workload name")
	budget := flag.Uint64("budget", 500_000, "branch events per run")
	flag.Parse()

	w, err := bench.ByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the original.
	prof, _, err := c.ProfileRun(bench.RunConfig{Budget: *budget, Scale: 1 << 30}, profile.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Replicate.
	static := predict.ProfileStatic(prof.Counts)
	choices := statemachine.Select(prof, c.Features, statemachine.Options{
		MaxStates: 5, MaxPathLen: 1,
	})
	clone := ir.CloneProgram(c.Prog)
	st, err := replicate.ApplyOpts(clone, choices, static.Preds, replicate.Options{MaxSizeFactor: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("consumers on %q (replicated at %.2fx size)\n\n", w.Name, st.SizeFactor())
	fmt.Printf("  %-34s %10s %10s\n", "", "original", "replicated")
	origLay, origScope := measure(c.Prog, *budget)
	replLay, replScope := measure(clone, *budget)
	phO := layoutRate(c.Prog, *budget, true)
	phR := layoutRate(clone, *budget, true)
	fmt.Printf("  %-34s %9.2f%% %9.2f%%\n", "taken transfers, naive layout", origLay, replLay)
	fmt.Printf("  %-34s %9.2f%% %9.2f%%\n", "taken transfers, PH layout", phO, phR)
	fmt.Printf("  %-34s %10.1f %10.1f\n", "avg dynamic trace length (instrs)", origScope, replScope)
}

// measure profiles a program and returns (naive-layout taken rate, avg
// dynamic trace length).
func measure(prog *ir.Program, budget uint64) (float64, float64) {
	bc, counts := runCounts(prog, budget)
	lay := layout.EvaluateProgram(prog, bc, counts, false)
	scope := superblock.MeasureProgram(prog, bc, counts)
	return lay.TakenRate(), scope.AvgDynamicLength()
}

func layoutRate(prog *ir.Program, budget uint64, ph bool) float64 {
	bc, counts := runCounts(prog, budget)
	return layout.EvaluateProgram(prog, bc, counts, ph).TakenRate()
}

func runCounts(prog *ir.Program, budget uint64) ([][]uint64, *trace.Counts) {
	n := prog.NumberBranches(false)
	counts := trace.NewCounts(n)
	m := interp.New(prog)
	m.EnableBlockCounts()
	m.Hook = counts.Branch
	m.MaxBranches = budget
	if err := m.SetGlobal("wscale", 1<<30); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		log.Fatal(err)
	}
	return m.BlockCounts(), counts
}
