// Quickstart: compile a small BL program, run the paper's whole pipeline —
// profile, build branch prediction state machines, replicate code — and
// print the measured improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// The program's hot branch alternates between taken and not-taken, the
// paper's Figure 1 example: plain profile prediction is wrong half the
// time, but a two-state replicated loop predicts it perfectly.
const src = `
var total int;

func main() int {
    for var i int = 0; i < 100000; i = i + 1 {
        if i % 2 == 0 {
            total = total + 3;
        } else {
            total = total - 1;
        }
    }
    print(total);
    return total;
}`

func main() {
	res, err := core.RunBL(src, core.Config{MaxStates: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: code replication on an alternating branch")
	fmt.Printf("  branches profiled:   %d events over %d sites\n",
		res.Profile.Counts.TotalAll(), res.Profile.NSites)
	fmt.Printf("  profile baseline:    %.2f%% mispredicted\n", res.BaselineRate)
	fmt.Printf("  replicated:          %.2f%% mispredicted\n", res.ReplicatedRate)
	fmt.Printf("  code size:           %d -> %d instructions (factor %.2f)\n",
		res.Stats.InstrsBefore, res.Stats.InstrsAfter, res.SizeFactor())
	if res.BaselineChecksum == res.ReplicatedChecksum {
		fmt.Println("  semantics:           identical checksums — transformation is sound")
	} else {
		log.Fatalf("checksum mismatch: %d vs %d", res.BaselineChecksum, res.ReplicatedChecksum)
	}
	for i := range res.Choices {
		c := &res.Choices[i]
		if c.Loop != nil {
			fmt.Printf("  machine for branch %d: %v\n", c.Site, c.Loop)
		}
	}
}
