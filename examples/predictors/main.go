// Predictors: run the whole predictor zoo over one built-in workload — the
// paper's Table 1 for a single column — including the nine [YN93] two-level
// combinations that motivated the semi-static adaptation.
//
//	go run ./examples/predictors [-workload NAME] [-budget N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "abalone", "workload name")
	budget := flag.Uint64("budget", 500_000, "branch events to trace")
	flag.Parse()

	w, err := bench.ByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic predictors, simulated over the trace.
	evals := []*predict.Eval{
		{P: predict.NewLastDirection(c.NSites)},
		{P: predict.NewTwoBit(c.NSites)},
		{P: predict.NewGShare(12)},
	}
	// The nine [YN93] two-level combinations (sets of 64 where scoped).
	for _, hs := range []predict.Scope{predict.ScopeGlobal, predict.ScopeSet, predict.ScopePerBranch} {
		for _, ps := range []predict.Scope{predict.ScopeGlobal, predict.ScopeSet, predict.ScopePerBranch} {
			cfg := predict.TwoLevelConfig{
				HistScope: hs, HistBits: 9,
				PatScope: ps,
			}
			if hs != predict.ScopeGlobal {
				cfg.HistEntries = 64
			}
			if ps != predict.ScopeGlobal {
				cfg.PatEntries = 64
			}
			evals = append(evals, &predict.Eval{P: predict.NewTwoLevel(cfg)})
		}
	}
	prof := profile.New(c.NSites, profile.Options{})
	collectors := []trace.Collector{prof}
	for _, e := range evals {
		collectors = append(collectors, e)
	}
	if _, err := c.Run(bench.RunConfig{Budget: *budget, Scale: 1 << 30}, collectors...); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("predictor comparison on %q (%d branch events)\n\n", w.Name, *budget)
	fmt.Printf("  %-28s  %8s\n", "strategy", "miss%")
	for _, e := range evals {
		fmt.Printf("  %-28s  %8.2f\n", e.P.Name(), e.Rate())
	}
	show := func(name string, r predict.Result) {
		fmt.Printf("  %-28s  %8.2f\n", name, r.Rate())
	}
	show("profile (semi-static)", predict.ProfileResult(prof.Counts))
	show("9 bit loop (semi-static)", predict.LoopResult(prof.Local))
	show("9 bit correlation (s-s)", predict.CorrelationResult(prof.Global))
	lc, improved := predict.LoopCorrelationResult(prof.Local, prof.Global, prof.Counts)
	show("loop-correlation (s-s)", lc)
	n := 0
	for _, b := range improved {
		if b {
			n++
		}
	}
	fmt.Printf("\n  %d of %d executed branches improve over plain profile\n",
		n, prof.Counts.Executed())

	// Static heuristics for contrast.
	fmt.Println("\n  static heuristics:")
	feats := c.Features
	for _, s := range []*predict.Static{
		predict.AlwaysTaken(c.NSites),
		predict.AlwaysNotTaken(c.NSites),
		predict.BackwardTaken(feats),
		predict.OpcodeStatic(feats),
		predict.BallLarus(feats),
	} {
		r := s.Score(prof.Counts)
		fmt.Printf("  %-28s  %8.2f\n", s.Strategy, r.Rate())
	}
}
