// Tracing: the profiling-tool workflow of section 3 — run a workload with
// the trace writer, persist the compressed branch trace to disk, read it
// back, and rebuild the analyses from the file instead of a live run.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/trace"
)

func main() {
	w, err := bench.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		log.Fatal(err)
	}

	path := filepath.Join(os.TempDir(), "compress.bltrace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	tw, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 300_000
	if _, err := c.Run(bench.RunConfig{Budget: budget, Scale: 1 << 30}, tw); err != nil {
		log.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d branch events of %q to %s\n", budget, w.Name, path)
	fmt.Printf("trace file: %d bytes (%.2f bits/branch; the paper reports ~1.7)\n",
		info.Size(), 8*float64(info.Size())/budget)

	// Read the trace back and rebuild the analyses offline.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	events, err := trace.ReadAll(rf)
	if err != nil {
		log.Fatal(err)
	}
	prof := profile.New(c.NSites, profile.Options{})
	trace.Replay(events, prof)
	fmt.Printf("replayed %d events from disk\n", len(events))

	show := func(name string, r predict.Result) {
		fmt.Printf("  %-22s %6.2f%%\n", name, r.Rate())
	}
	fmt.Println("analyses rebuilt from the trace file:")
	show("profile", predict.ProfileResult(prof.Counts))
	show("9 bit loop", predict.LoopResult(prof.Local))
	show("9 bit correlation", predict.CorrelationResult(prof.Global))
	lc, _ := predict.LoopCorrelationResult(prof.Local, prof.Global, prof.Counts)
	show("loop-correlation", lc)
	for _, fr := range prof.Local.FillRates() {
		if fr.Length == 9 {
			fmt.Printf("  9-bit table fill rate: %.2f%%\n", fr.Rate())
		}
	}
	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}
